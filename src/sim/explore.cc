// Implementation of the deterministic chaos explorer: fault-schedule
// generation, the oracle workload + invariant checkers, JSON replay
// artifacts, and ddmin schedule shrinking. See explore.h for the model.

#include "sim/explore.h"

#include <algorithm>
#include <cctype>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "actor/actor_ref.h"
#include "actor/fault.h"
#include "actor/membership.h"
#include "actor/method_registry.h"
#include "common/json.h"
#include "common/logging.h"
#include "sim/sim_harness.h"
#include "storage/faulty_storage.h"
#include "storage/mem_kv.h"
#include "storage/persistent_actor.h"

namespace aodb {
namespace dst {

namespace {

// --- The oracle actor --------------------------------------------------------

/// Durable monotonic sequence register. Apply(seq) is idempotent — applying
/// a sequence number at or below the current one changes nothing — and
/// ALWAYS writes before acking, so every OK reply implies the replied value
/// is durable (even a duplicate-delivery re-ack after a lost reply must
/// re-establish durability before answering).
struct SeqState {
  int64_t last_seq = 0;
  void Encode(BufWriter* w) const { w->PutSigned(last_seq); }
  Status Decode(BufReader* r) { return r->GetSigned(&last_seq); }
};

class DstSeqActor : public PersistentActor<SeqState> {
 public:
  static constexpr char kTypeName[] = "dst.Seq";

  DstSeqActor() : PersistentActor<SeqState>(MakePersistence()) {}

  Future<int64_t> Apply(int64_t seq) {
    if (seq > state().last_seq) state().last_seq = seq;
    int64_t value = state().last_seq;
    Promise<int64_t> done;
    WriteStateAsync().OnReady([done, value](Result<Status>&& r) {
      Status st = r.ok() ? r.value() : r.status();
      if (st.ok()) {
        done.SetValue(value);
      } else {
        done.SetError(st);
      }
    });
    return done.GetFuture();
  }

  int64_t Last() { return state().last_seq; }

 private:
  static PersistenceOptions MakePersistence() {
    PersistenceOptions o;
    // Writes are explicit (Apply) and acks must mean durable, so the
    // deactivation flush must NOT silently repair a lost write: never mark
    // dirty, never auto-flush.
    o.policy = PersistPolicy::kOnDeactivate;
    o.retry.max_retries = 6;
    o.retry.initial_backoff_us = 4 * kMicrosPerMilli;
    o.retry.max_backoff_us = 60 * kMicrosPerMilli;
    return o;
  }
};

Status RegisterDstWire() {
  static const Status st = [] {
    AODB_RETURN_NOT_OK(MethodRegistry::Global().Register(
        DstSeqActor::kTypeName, &DstSeqActor::Apply, "dst.Seq.Apply",
        /*idempotent=*/true));
    return MethodRegistry::Global().Register(
        DstSeqActor::kTypeName, &DstSeqActor::Last, "dst.Seq.Last",
        /*idempotent=*/true);
  }();
  return st;
}

// --- Fingerprinting ----------------------------------------------------------

constexpr uint64_t kFnvOffset = 1469598103934665603ULL;
constexpr uint64_t kFnvPrime = 1099511628211ULL;

void HashBytes(uint64_t* h, const void* data, size_t n) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (size_t i = 0; i < n; ++i) {
    *h ^= p[i];
    *h *= kFnvPrime;
  }
}

void HashI64(uint64_t* h, int64_t v) { HashBytes(h, &v, sizeof(v)); }

void HashStr(uint64_t* h, const std::string& s) {
  HashI64(h, static_cast<int64_t>(s.size()));
  HashBytes(h, s.data(), s.size());
}

std::string HexDigest(uint64_t h) {
  char buf[20];
  std::snprintf(buf, sizeof(buf), "%016" PRIx64, h);
  return std::string(buf);
}

// --- Runtime configuration ---------------------------------------------------

/// Cluster options tuned so one scenario's detect-and-recover cycle fits a
/// few virtual seconds: fast membership (lease 1 s, probes 4/s), aggressive
/// idle deactivation (the split-brain race fuel: actors deactivate between
/// client operations while duplicates and reordered messages are still in
/// flight), and hot-actor migration enabled so the migration path is under
/// test too.
RuntimeOptions MakeRuntimeOptions(const FaultPlan& plan,
                                  const ExploreConfig& config) {
  RuntimeOptions o;
  o.num_silos = config.num_silos;
  o.workers_per_silo = 2;
  o.seed = plan.seed;
  o.default_call_deadline_us = kMicrosPerSecond;
  o.wire.require_wire = true;
  o.membership.enable = true;
  o.membership.lease_duration_us = kMicrosPerSecond;
  o.membership.heartbeat_period_us = 200 * kMicrosPerMilli;
  o.membership.probe_period_us = 250 * kMicrosPerMilli;
  o.membership.probe_timeout_us = 100 * kMicrosPerMilli;
  o.membership.probe_fanout = 2;
  o.membership.suspect_after_missed = 2;
  o.membership.eviction_quorum = 2;
  o.membership.failover.max_retries = 3;
  o.membership.failover.initial_backoff_us = 10 * kMicrosPerMilli;
  o.max_resident_activations = config.max_resident_activations;
  o.lifecycle.enable_idle_deactivation = true;
  o.lifecycle.idle_timeout_us = 8 * kMicrosPerMilli;
  o.lifecycle.scan_interval_us = 5 * kMicrosPerMilli;
  o.overload.enable_hot_migration = true;
  o.overload.scan_interval_us = 50 * kMicrosPerMilli;
  o.overload.hot_actor_min_depth = 1;
  o.overload.min_load_delta = 1;
  o.overload.migration_cooldown_us = 100 * kMicrosPerMilli;
  return o;
}

std::string ActorKey(int i) { return "s" + std::to_string(i); }

// --- The per-actor client driver --------------------------------------------

/// Serial closed-loop client for one oracle actor: submit Apply(seq), on ack
/// advance to seq+1 after op_gap, on failure re-submit the SAME seq after
/// retry_gap (at-least-once; Apply is idempotent). Monotonicity of replies
/// is checked on every ack.
struct Driver {
  explicit Driver(ActorRef<DstSeqActor> r) : ref(std::move(r)) {}
  ActorRef<DstSeqActor> ref;
  int index = 0;
  int64_t next_seq = 1;
  int64_t max_acked = 0;
  int64_t last_reply = 0;
  int64_t acked = 0;
};

}  // namespace

// --- Plan generation ---------------------------------------------------------

FaultPlan GeneratePlan(uint64_t seed, const ExploreConfig& config) {
  // Distinct stream tag so plan-shape draws are independent of the
  // injector's runtime Bernoulli streams (which also derive from `seed`).
  constexpr uint64_t kPlanStream = 0x706c616e67656eULL;  // "plangen"
  Rng rng(seed ^ kPlanStream);
  FaultPlan plan;
  plan.seed = seed;
  const Micros window = config.duration_us;
  const auto in_window = [&rng, window] {
    // Land faults inside [12.5%, 75%) of the window so the workload is
    // running when they fire and has time to limp before the heal phase.
    return window / 8 +
           static_cast<Micros>(rng.NextBelow(
               static_cast<uint64_t>(window / 2 + window / 8)));
  };

  int n_crashes = static_cast<int>(
      rng.NextBelow(static_cast<uint64_t>(config.max_crashes) + 1));
  for (int i = 0; i < n_crashes; ++i) {
    SiloCrashEvent ev;
    ev.at_us = in_window();
    ev.silo = static_cast<SiloId>(
        rng.NextBelow(static_cast<uint64_t>(config.num_silos)));
    ev.restart_after_us =
        200 * kMicrosPerMilli +
        static_cast<Micros>(rng.NextBelow(1200 * kMicrosPerMilli));
    plan.crashes.push_back(ev);
  }

  int n_wedges = static_cast<int>(
      rng.NextBelow(static_cast<uint64_t>(config.max_wedges) + 1));
  for (int i = 0; i < n_wedges; ++i) {
    SiloWedgeEvent ev;
    ev.at_us = in_window();
    ev.silo = static_cast<SiloId>(
        rng.NextBelow(static_cast<uint64_t>(config.num_silos)));
    ev.suppress_only = rng.Bernoulli(0.4);
    plan.wedges.push_back(ev);
  }

  int n_partitions = static_cast<int>(
      rng.NextBelow(static_cast<uint64_t>(config.max_partitions) + 1));
  for (int i = 0; i < n_partitions; ++i) {
    LinkPartitionEvent ev;
    ev.at_us = in_window();
    ev.from = static_cast<SiloId>(
        rng.NextBelow(static_cast<uint64_t>(config.num_silos)));
    ev.to = static_cast<SiloId>(
        (static_cast<uint64_t>(ev.from) + 1 +
         rng.NextBelow(static_cast<uint64_t>(config.num_silos - 1))) %
        static_cast<uint64_t>(config.num_silos));
    ev.heal_after_us =
        300 * kMicrosPerMilli +
        static_cast<Micros>(rng.NextBelow(kMicrosPerSecond));
    ev.symmetric = rng.Bernoulli(0.3);
    plan.partitions.push_back(ev);
  }

  plan.message.drop_prob = rng.NextDouble() * config.max_drop_prob;
  plan.message.duplicate_prob = rng.NextDouble() * config.max_duplicate_prob;
  plan.message.corrupt_prob = rng.NextDouble() * config.max_corrupt_prob;
  plan.message.reorder_prob = rng.NextDouble() * config.max_reorder_prob;
  plan.storage.error_prob = rng.NextDouble() * config.max_storage_error_prob;
  plan.storage.latency_spike_prob = rng.NextDouble() * 0.05;
  plan.storage.torn_write_prob =
      rng.NextDouble() * config.max_torn_write_prob;
  return plan;
}

// --- The scenario runner -----------------------------------------------------

RunResult RunScenario(const FaultPlan& plan, const ExploreConfig& config) {
  RunResult out;
  uint64_t h = kFnvOffset;
  const int64_t leak_base = PromisesLeaked();
  {
    Status reg = RegisterDstWire();
    if (!reg.ok()) {
      out.violations.push_back("wire registration failed: " + reg.ToString());
      return out;
    }
    RuntimeOptions options = MakeRuntimeOptions(plan, config);
    MemKvStore system_kv;
    SimHarness harness(options, &system_kv);
    Cluster& cluster = harness.cluster();
    cluster.RegisterActorType<DstSeqActor>();
    FaultInjector injector(plan);
    MemKvStore backing;
    auto faulty = std::make_shared<FaultyStateStorage>(
        std::make_shared<KvStateStorage>(&backing), &injector);
    cluster.RegisterStateStorage("default", faulty);
    cluster.StartIdleScanner();
    cluster.StartOverloadController();

    // Invariant 1: exactly-one-live-activation, cross-checked against the
    // directory. Run at every quiesce point — a transient split-brain is
    // GC'd by the idle sweeper long before end-of-run, so an end-only check
    // would miss it. Orphan directory entries (placement whose first
    // message was lost) are legal; a live activation the directory does not
    // point at is not.
    auto check_catalog = [&] {
      ++out.checks_run;
      std::unordered_map<ActorId, std::vector<SiloId>, ActorIdHash> hosts;
      for (int s = 0; s < config.num_silos; ++s) {
        Silo* silo = cluster.silo(s);
        if (silo == nullptr || !silo->alive()) continue;
        for (const ActorId& id : silo->LiveActivations()) {
          hosts[id].push_back(s);
        }
      }
      for (const auto& [id, silos] : hosts) {
        if (silos.size() > 1) {
          std::string where;
          for (SiloId s : silos) {
            if (!where.empty()) where += ",";
            where += std::to_string(s);
          }
          out.violations.push_back(
              "split-brain: " + id.ToString() + " live on silos {" + where +
              "} at t=" + std::to_string(harness.Now()) + "us");
          continue;
        }
        auto owner = cluster.directory().LookupEntry(id);
        if (!owner.has_value() || owner->silo != silos[0]) {
          out.violations.push_back(
              "stray activation: " + id.ToString() + " live on silo " +
              std::to_string(silos[0]) + " but directory says " +
              (owner.has_value() ? std::to_string(owner->silo) : "<none>") +
              " at t=" + std::to_string(harness.Now()) + "us");
        } else if (owner->paged) {
          // The paged flag promises "registered but NOT resident"; the
          // winning fault-in creator clears it in the same synchronous
          // block that puts the activation in the catalog, so a live
          // activation under a paged entry is a paging/directory desync
          // (double fault-in, or an eviction that never left the catalog).
          out.violations.push_back(
              "paged-desync: " + id.ToString() + " live on silo " +
              std::to_string(silos[0]) +
              " but its directory entry is marked paged at t=" +
              std::to_string(harness.Now()) + "us");
        }
      }
    };

    // The oracle workload (invariants 2 and 3 accumulate here).
    std::vector<std::shared_ptr<Driver>> drivers;
    for (int i = 0; i < config.num_actors; ++i) {
      auto d = std::make_shared<Driver>(cluster.Ref<DstSeqActor>(ActorKey(i)));
      d->index = i;
      drivers.push_back(std::move(d));
    }
    Executor* client = harness.client_executor();
    const Micros window_end = harness.Now() + config.duration_us;
    std::function<void(std::shared_ptr<Driver>)> step;
    step = [&, client, window_end](std::shared_ptr<Driver> d) {
      if (d->next_seq > config.ops_per_actor ||
          harness.Now() >= window_end) {
        return;
      }
      const int64_t seq = d->next_seq;
      d->ref.Call(&DstSeqActor::Apply, seq)
          .OnReady([&, client, d, seq](Result<int64_t>&& r) {
            if (r.ok()) {
              const int64_t v = r.value();
              if (v < d->last_reply) {
                out.violations.push_back(
                    "monotonicity: actor " + ActorKey(d->index) +
                    " reply went backwards (" + std::to_string(v) + " after " +
                    std::to_string(d->last_reply) + ")");
              }
              if (v < seq) {
                out.violations.push_back(
                    "monotonicity: actor " + ActorKey(d->index) + " acked seq " +
                    std::to_string(seq) + " but replied " + std::to_string(v));
              }
              d->last_reply = std::max(d->last_reply, v);
              d->max_acked = std::max(d->max_acked, seq);
              ++d->acked;
              d->next_seq = seq + 1;
              client->PostAfter(config.op_gap_us, [&, d] { step(d); });
            } else {
              // At-least-once: re-submit the same sequence number.
              client->PostAfter(config.retry_gap_us, [&, d] { step(d); });
            }
          });
    };
    for (auto& d : drivers) step(d);

    // The fault window: arm the plan, then advance in quiesce-point steps.
    injector.Arm(&cluster);
    while (harness.Now() < window_end) {
      harness.RunFor(config.check_interval_us);
      check_catalog();
    }
    if (config.force_violation) {
      out.violations.push_back(
          "forced: synthetic invariant violation on actor " +
          std::string(DstSeqActor::kTypeName) + "/" + ActorKey(0) +
          " (postmortem pipeline self-test) at t=" +
          std::to_string(harness.Now()) + "us");
    }

    // Heal phase: flush wedges (kill fails their swallowed backlog
    // deterministically), restart every dead silo, unsuppress membership
    // agents, and mend every link — then settle until retries run dry.
    for (int s = 0; s < config.num_silos; ++s) {
      if (cluster.SiloAlive(s) && cluster.silo(s)->wedged()) {
        cluster.KillSilo(s);
      }
    }
    if (MembershipService* m = cluster.membership()) {
      for (int s = 0; s < config.num_silos; ++s) m->SuppressSilo(s, false);
    }
    for (int s = 0; s < config.num_silos; ++s) {
      if (!cluster.SiloAlive(s)) cluster.RestartSilo(s);
    }
    for (int a = 0; a < config.num_silos; ++a) {
      for (int b = 0; b < config.num_silos; ++b) {
        if (a != b) cluster.network().SetPartitioned(a, b, false);
      }
    }
    Micros settled = 0;
    while (settled < config.settle_us) {
      harness.RunFor(config.check_interval_us);
      settled += config.check_interval_us;
      check_catalog();
    }

    // Invariant 2 (conservation): force every activation to be rebuilt from
    // persisted state, then read back each actor's durable sequence. Since
    // the oracle never marks dirty, the deactivation flush cannot paper
    // over a lost write.
    Future<Status> drained = cluster.DeactivateAll();
    if (!RunUntilReady(harness, drained, 5 * kMicrosPerSecond)) {
      out.violations.push_back("teardown: DeactivateAll did not complete");
    }
    for (auto& d : drivers) {
      const int64_t floor = std::max(d->max_acked, d->last_reply);
      bool read_ok = false;
      int64_t durable = 0;
      for (int attempt = 0; attempt < 8 && !read_ok; ++attempt) {
        Future<int64_t> f = d->ref.Call(&DstSeqActor::Last);
        if (RunUntilReady(harness, f, 2 * kMicrosPerSecond) &&
            f.Get().ok()) {
          durable = f.Get().value();
          read_ok = true;
        } else {
          harness.RunFor(100 * kMicrosPerMilli);
        }
      }
      if (!read_ok) {
        out.violations.push_back("conservation: actor " + ActorKey(d->index) +
                                 " unreadable after the cluster healed");
      } else if (durable < floor) {
        out.violations.push_back(
            "conservation: actor " + ActorKey(d->index) + " acked seq " +
            std::to_string(floor) + " but recovered only " +
            std::to_string(durable));
      }
      out.acked_ops += d->acked;
      HashI64(&h, d->acked);
      HashI64(&h, d->max_acked);
      HashI64(&h, d->last_reply);
      HashI64(&h, read_ok ? durable : -1);
    }
    check_catalog();

    // Fingerprint the rest of the observable outcome while the cluster is
    // still alive.
    HashI64(&h, injector.messages_dropped());
    HashI64(&h, injector.messages_duplicated());
    HashI64(&h, injector.messages_corrupted());
    HashI64(&h, injector.messages_reordered());
    HashI64(&h, injector.storage_errors());
    HashI64(&h, injector.storage_spikes());
    HashI64(&h, injector.torn_writes());
    HashI64(&h, injector.link_severs());
    HashI64(&h, injector.silo_kills());
    HashI64(&h, injector.silo_restarts());
    ClusterCounters cc = cluster.cluster_counters();
    HashI64(&h, cc.dead_letters);
    HashI64(&h, cc.auto_evictions);
    HashI64(&h, cc.failover_resubmitted);
    HashI64(&h, cc.failover_failed);
    HashI64(&h, cc.deadline_timeouts);
    HashI64(&h, cc.no_live_silo_rejects);
    WireStats ws = cluster.wire_stats();
    HashI64(&h, ws.wire_requests);
    HashI64(&h, ws.decode_failures);
    HashI64(&h, cluster.TotalMessagesProcessed());
    HashI64(&h, out.checks_run);

    // Violating run: capture the postmortem bundle while the cluster is
    // still up (it needs live membership, catalogs, and metric state).
    if (!out.violations.empty()) {
      out.postmortem_json = cluster.BuildPostmortemJson(
          "dst invariant violation: " + out.violations.front());
    }

    cluster.Stop();
  }
  // Invariant 4: the whole scenario — cluster, scheduler, drivers — is torn
  // down, so any promise that still had a continuation but never completed
  // has been destroyed and counted by now.
  const int64_t leaked = PromisesLeaked() - leak_base;
  if (leaked > 0) {
    out.violations.push_back("promise leak: " + std::to_string(leaked) +
                             " promise(s) destroyed with continuations "
                             "attached but never completed");
  }
  HashI64(&h, leaked);
  for (const std::string& v : out.violations) HashStr(&h, v);
  out.fingerprint = HexDigest(h);
  return out;
}

// --- JSON replay artifacts ---------------------------------------------------

namespace {

void AppendDouble(std::string* s, double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  *s += buf;
}

void AppendI64(std::string* s, int64_t v) { *s += std::to_string(v); }

}  // namespace

std::string PlanToJson(const FaultPlan& plan) {
  std::string s;
  s += "{\n  \"seed\": ";
  AppendI64(&s, static_cast<int64_t>(plan.seed));
  s += ",\n  \"crashes\": [";
  for (size_t i = 0; i < plan.crashes.size(); ++i) {
    const SiloCrashEvent& ev = plan.crashes[i];
    s += i == 0 ? "\n" : ",\n";
    s += "    {\"at_us\": ";
    AppendI64(&s, ev.at_us);
    s += ", \"silo\": ";
    AppendI64(&s, ev.silo);
    s += ", \"restart_after_us\": ";
    AppendI64(&s, ev.restart_after_us);
    s += "}";
  }
  s += plan.crashes.empty() ? "]" : "\n  ]";
  s += ",\n  \"wedges\": [";
  for (size_t i = 0; i < plan.wedges.size(); ++i) {
    const SiloWedgeEvent& ev = plan.wedges[i];
    s += i == 0 ? "\n" : ",\n";
    s += "    {\"at_us\": ";
    AppendI64(&s, ev.at_us);
    s += ", \"silo\": ";
    AppendI64(&s, ev.silo);
    s += ", \"suppress_only\": ";
    s += ev.suppress_only ? "true" : "false";
    s += "}";
  }
  s += plan.wedges.empty() ? "]" : "\n  ]";
  s += ",\n  \"partitions\": [";
  for (size_t i = 0; i < plan.partitions.size(); ++i) {
    const LinkPartitionEvent& ev = plan.partitions[i];
    s += i == 0 ? "\n" : ",\n";
    s += "    {\"at_us\": ";
    AppendI64(&s, ev.at_us);
    s += ", \"from\": ";
    AppendI64(&s, ev.from);
    s += ", \"to\": ";
    AppendI64(&s, ev.to);
    s += ", \"heal_after_us\": ";
    AppendI64(&s, ev.heal_after_us);
    s += ", \"symmetric\": ";
    s += ev.symmetric ? "true" : "false";
    s += "}";
  }
  s += plan.partitions.empty() ? "]" : "\n  ]";
  s += ",\n  \"message\": {\"drop_prob\": ";
  AppendDouble(&s, plan.message.drop_prob);
  s += ", \"duplicate_prob\": ";
  AppendDouble(&s, plan.message.duplicate_prob);
  s += ", \"corrupt_prob\": ";
  AppendDouble(&s, plan.message.corrupt_prob);
  s += ", \"reorder_prob\": ";
  AppendDouble(&s, plan.message.reorder_prob);
  s += ", \"reorder_max_delay_us\": ";
  AppendI64(&s, plan.message.reorder_max_delay_us);
  s += "},\n  \"storage\": {\"error_prob\": ";
  AppendDouble(&s, plan.storage.error_prob);
  s += ", \"latency_spike_prob\": ";
  AppendDouble(&s, plan.storage.latency_spike_prob);
  s += ", \"spike_latency_us\": ";
  AppendI64(&s, plan.storage.spike_latency_us);
  s += ", \"error_code\": ";
  AppendI64(&s, static_cast<int64_t>(plan.storage.error));
  s += ", \"torn_write_prob\": ";
  AppendDouble(&s, plan.storage.torn_write_prob);
  s += "}\n}\n";
  return s;
}

Status PlanFromJson(const std::string& json, FaultPlan* out) {
  *out = FaultPlan{};
  out->seed = 0;
  JsonReader r(json);
  auto bad = [](const std::string& what) {
    return Status::Corruption("replay artifact: malformed " + what);
  };
  bool ok = ReadObject(&r, [&](const std::string& key) -> bool {
    if (key == "seed") {
      int64_t v;
      if (!r.ReadI64(&v)) return false;
      out->seed = static_cast<uint64_t>(v);
      return true;
    }
    if (key == "crashes") {
      return ReadArray(&r, [&] {
        SiloCrashEvent ev;
        bool got = ReadObject(&r, [&](const std::string& k) -> bool {
          int64_t v;
          if (k == "at_us") return r.ReadI64(&ev.at_us);
          if (k == "silo") {
            if (!r.ReadI64(&v)) return false;
            ev.silo = static_cast<SiloId>(v);
            return true;
          }
          if (k == "restart_after_us") return r.ReadI64(&ev.restart_after_us);
          return r.SkipValue();
        });
        if (got) out->crashes.push_back(ev);
        return got;
      });
    }
    if (key == "wedges") {
      return ReadArray(&r, [&] {
        SiloWedgeEvent ev;
        bool got = ReadObject(&r, [&](const std::string& k) -> bool {
          int64_t v;
          if (k == "at_us") return r.ReadI64(&ev.at_us);
          if (k == "silo") {
            if (!r.ReadI64(&v)) return false;
            ev.silo = static_cast<SiloId>(v);
            return true;
          }
          if (k == "suppress_only") return r.ReadBool(&ev.suppress_only);
          return r.SkipValue();
        });
        if (got) out->wedges.push_back(ev);
        return got;
      });
    }
    if (key == "partitions") {
      return ReadArray(&r, [&] {
        LinkPartitionEvent ev;
        bool got = ReadObject(&r, [&](const std::string& k) -> bool {
          int64_t v;
          if (k == "at_us") return r.ReadI64(&ev.at_us);
          if (k == "from") {
            if (!r.ReadI64(&v)) return false;
            ev.from = static_cast<SiloId>(v);
            return true;
          }
          if (k == "to") {
            if (!r.ReadI64(&v)) return false;
            ev.to = static_cast<SiloId>(v);
            return true;
          }
          if (k == "heal_after_us") return r.ReadI64(&ev.heal_after_us);
          if (k == "symmetric") return r.ReadBool(&ev.symmetric);
          return r.SkipValue();
        });
        if (got) out->partitions.push_back(ev);
        return got;
      });
    }
    if (key == "message") {
      return ReadObject(&r, [&](const std::string& k) -> bool {
        if (k == "drop_prob") return r.ReadDouble(&out->message.drop_prob);
        if (k == "duplicate_prob") {
          return r.ReadDouble(&out->message.duplicate_prob);
        }
        if (k == "corrupt_prob") {
          return r.ReadDouble(&out->message.corrupt_prob);
        }
        if (k == "reorder_prob") {
          return r.ReadDouble(&out->message.reorder_prob);
        }
        if (k == "reorder_max_delay_us") {
          return r.ReadI64(&out->message.reorder_max_delay_us);
        }
        return r.SkipValue();
      });
    }
    if (key == "storage") {
      return ReadObject(&r, [&](const std::string& k) -> bool {
        int64_t v;
        if (k == "error_prob") return r.ReadDouble(&out->storage.error_prob);
        if (k == "latency_spike_prob") {
          return r.ReadDouble(&out->storage.latency_spike_prob);
        }
        if (k == "spike_latency_us") {
          return r.ReadI64(&out->storage.spike_latency_us);
        }
        if (k == "error_code") {
          if (!r.ReadI64(&v)) return false;
          out->storage.error = static_cast<StatusCode>(v);
          return true;
        }
        if (k == "torn_write_prob") {
          return r.ReadDouble(&out->storage.torn_write_prob);
        }
        return r.SkipValue();
      });
    }
    return r.SkipValue();
  });
  if (!ok) return bad("plan object");
  if (!r.AtEnd()) return bad("trailing content");
  if (out->seed == 0) return bad("plan (missing seed)");
  return Status::OK();
}

// --- Schedule shrinking ------------------------------------------------------

int CountFaultEvents(const FaultPlan& plan) {
  return static_cast<int>(plan.crashes.size() + plan.wedges.size() +
                          plan.partitions.size());
}

namespace {

/// Flattened discrete event: (kind, index into the original plan's vector).
struct FlatEvent {
  enum Kind { kCrash, kWedge, kPartition };
  Kind kind;
  size_t index;
};

std::vector<FlatEvent> Flatten(const FaultPlan& plan) {
  std::vector<FlatEvent> out;
  for (size_t i = 0; i < plan.crashes.size(); ++i) {
    out.push_back({FlatEvent::kCrash, i});
  }
  for (size_t i = 0; i < plan.wedges.size(); ++i) {
    out.push_back({FlatEvent::kWedge, i});
  }
  for (size_t i = 0; i < plan.partitions.size(); ++i) {
    out.push_back({FlatEvent::kPartition, i});
  }
  return out;
}

FaultPlan Rebuild(const FaultPlan& original,
                  const std::vector<FlatEvent>& keep) {
  FaultPlan plan;
  plan.seed = original.seed;
  plan.message = original.message;
  plan.storage = original.storage;
  for (const FlatEvent& ev : keep) {
    switch (ev.kind) {
      case FlatEvent::kCrash:
        plan.crashes.push_back(original.crashes[ev.index]);
        break;
      case FlatEvent::kWedge:
        plan.wedges.push_back(original.wedges[ev.index]);
        break;
      case FlatEvent::kPartition:
        plan.partitions.push_back(original.partitions[ev.index]);
        break;
    }
  }
  return plan;
}

}  // namespace

FaultPlan ShrinkPlan(const FaultPlan& plan, const ExploreConfig& config,
                     int max_runs, int* shrink_runs) {
  int runs = 0;
  auto violates = [&](const FaultPlan& candidate) {
    ++runs;
    return !RunScenario(candidate, config).violations.empty();
  };
  std::vector<FlatEvent> events = Flatten(plan);
  // Fast path: if the probabilistic streams alone reproduce the violation,
  // the minimal schedule is empty.
  if (!events.empty() && runs < max_runs &&
      violates(Rebuild(plan, {}))) {
    events.clear();
  }
  // Classic ddmin over complements: drop chunks of shrinking granularity as
  // long as the violation survives.
  size_t n = 2;
  while (events.size() >= 2 && runs < max_runs) {
    const size_t chunk = (events.size() + n - 1) / n;
    bool reduced = false;
    for (size_t i = 0; i < n && !reduced && runs < max_runs; ++i) {
      const size_t lo = i * chunk;
      if (lo >= events.size()) break;
      const size_t hi = std::min(events.size(), lo + chunk);
      std::vector<FlatEvent> complement;
      complement.reserve(events.size() - (hi - lo));
      complement.insert(complement.end(), events.begin(),
                        events.begin() + static_cast<ptrdiff_t>(lo));
      complement.insert(complement.end(),
                        events.begin() + static_cast<ptrdiff_t>(hi),
                        events.end());
      if (complement.size() == events.size()) continue;
      if (violates(Rebuild(plan, complement))) {
        events = std::move(complement);
        n = std::max<size_t>(2, n - 1);
        reduced = true;
      }
    }
    if (!reduced) {
      if (n >= events.size()) break;
      n = std::min(events.size(), n * 2);
    }
  }
  if (shrink_runs != nullptr) *shrink_runs = runs;
  return Rebuild(plan, events);
}

}  // namespace dst
}  // namespace aodb
