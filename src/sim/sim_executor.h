// Virtual-CPU executor over the discrete-event scheduler. Each instance
// models one node with `workers` vCPUs; posted tasks occupy the earliest-
// free worker for their declared cost, realizing an FCFS multi-server
// queue. A zero-worker executor models the client node (callbacks run at
// the current virtual time without CPU contention).

#ifndef AODB_SIM_SIM_EXECUTOR_H_
#define AODB_SIM_SIM_EXECUTOR_H_

#include <algorithm>
#include <vector>

#include "actor/executor.h"
#include "sim/sim_scheduler.h"

namespace aodb {

/// Discrete-event executor. Single-threaded like its scheduler.
class SimExecutor final : public Executor {
 public:
  /// `workers` == 0 models an uncontended node (external client).
  SimExecutor(SimScheduler* scheduler, int workers)
      : scheduler_(scheduler), free_at_(std::max(workers, 0), 0) {}

  void Post(Task task) override {
    ++stats_.tasks_run;
    if (free_at_.empty()) {
      scheduler_->After(0, std::move(task.fn));
      return;
    }
    auto it = std::min_element(free_at_.begin(), free_at_.end());
    Micros start = std::max(scheduler_->Now(), *it);
    Micros end = start + (task.cost_us < 0 ? 0 : task.cost_us);
    *it = end;
    stats_.busy_us += end - start;
    scheduler_->At(end, std::move(task.fn));
  }

  void PostAfter(Micros delay_us, std::function<void()> fn) override {
    scheduler_->After(delay_us, std::move(fn));
  }

  void PostAt(Micros due, std::function<void()> fn) override {
    scheduler_->At(due, std::move(fn));
  }

  Clock* clock() override { return scheduler_->clock(); }
  int workers() const override { return static_cast<int>(free_at_.size()); }
  ExecutorStats Stats() const override { return stats_; }

  /// Fraction of CPU time in use over [0, now] (or a supplied window).
  double Utilization(Micros window_start = 0) const {
    Micros elapsed = scheduler_->Now() - window_start;
    if (elapsed <= 0 || free_at_.empty()) return 0.0;
    return static_cast<double>(stats_.busy_us) /
           (static_cast<double>(elapsed) *
            static_cast<double>(free_at_.size()));
  }

 private:
  SimScheduler* scheduler_;
  std::vector<Micros> free_at_;
  ExecutorStats stats_;
};

}  // namespace aodb

#endif  // AODB_SIM_SIM_EXECUTOR_H_
