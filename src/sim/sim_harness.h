// Bundles a simulated cluster: the event scheduler, one SimExecutor per
// silo (modeling that server's vCPUs), a client-node executor, and the
// Cluster wired over them. The same application code that runs on real
// thread pools runs here in virtual time.

#ifndef AODB_SIM_SIM_HARNESS_H_
#define AODB_SIM_SIM_HARNESS_H_

#include <memory>
#include <vector>

#include "actor/cluster.h"
#include "sim/sim_executor.h"
#include "sim/sim_scheduler.h"

namespace aodb {

/// Owner of a simulation-mode cluster.
class SimHarness {
 public:
  explicit SimHarness(const RuntimeOptions& options,
                      SystemKv* system_kv = nullptr) {
    silo_execs_.reserve(options.num_silos);
    std::vector<Executor*> execs;
    for (int i = 0; i < options.num_silos; ++i) {
      silo_execs_.push_back(std::make_unique<SimExecutor>(
          &scheduler_, options.workers_per_silo));
      execs.push_back(silo_execs_.back().get());
    }
    client_exec_ = std::make_unique<SimExecutor>(&scheduler_, 0);
    cluster_ = std::make_unique<Cluster>(options, std::move(execs),
                                         client_exec_.get(), system_kv);
  }

  Cluster& cluster() { return *cluster_; }
  SimScheduler& scheduler() { return scheduler_; }
  SimExecutor* client_executor() { return client_exec_.get(); }
  SimExecutor* silo_executor(SiloId id) { return silo_execs_[id].get(); }

  Micros Now() const { return scheduler_.Now(); }

  /// Advances virtual time to `t`, processing all due events.
  int64_t RunUntil(Micros t) { return scheduler_.RunUntil(t); }
  /// Advances virtual time by `delta`.
  int64_t RunFor(Micros delta) {
    return scheduler_.RunUntil(scheduler_.Now() + delta);
  }
  /// Drains every pending event (careful with periodic timers/reminders,
  /// which keep the queue non-empty forever).
  int64_t RunAll(int64_t max_events = -1) {
    return scheduler_.RunAll(max_events);
  }

  /// Telemetry convenience: snapshot of the cluster's unified registry and
  /// the trace dump, so sim experiments can report without reaching through
  /// cluster(). Both are safe to call mid-run.
  MetricsSnapshot SnapshotMetrics() const { return cluster_->SnapshotMetrics(); }
  std::string DumpMetrics() const { return cluster_->DumpMetrics(); }
  std::string DumpTraceJson() const { return cluster_->DumpTraceJson(); }

  /// Mean CPU utilization across all silos since simulation start.
  double MeanUtilization() const {
    if (silo_execs_.empty()) return 0.0;
    double total = 0;
    for (const auto& e : silo_execs_) total += e->Utilization();
    return total / static_cast<double>(silo_execs_.size());
  }

 private:
  SimScheduler scheduler_;
  std::vector<std::unique_ptr<SimExecutor>> silo_execs_;
  std::unique_ptr<SimExecutor> client_exec_;
  std::unique_ptr<Cluster> cluster_;
};

/// Advances virtual time in `step` increments until `future` is ready or
/// `max_wait` virtual time has elapsed. Returns true if the future became
/// ready. Unlike RunFor, the clock stops at (about) the completion time,
/// so `harness.Now()` can be used to measure virtual latency.
template <typename T>
bool RunUntilReady(SimHarness& harness, const Future<T>& future,
                   Micros max_wait, Micros step = 10 * kMicrosPerMilli) {
  Micros deadline = harness.Now() + max_wait;
  while (!future.Ready() && harness.Now() < deadline) {
    harness.RunFor(step);
  }
  return future.Ready();
}

/// Advances virtual time in `step` increments until `pred()` is true or
/// `max_wait` virtual time has elapsed. Returns true if the predicate held.
/// Used to wait for cluster-level conditions with no future to watch (e.g.
/// the failure detector evicting a wedged silo).
template <typename Pred>
bool RunUntilTrue(SimHarness& harness, Pred pred, Micros max_wait,
                  Micros step = 10 * kMicrosPerMilli) {
  Micros deadline = harness.Now() + max_wait;
  while (!pred() && harness.Now() < deadline) {
    harness.RunFor(step);
  }
  return pred();
}

}  // namespace aodb

#endif  // AODB_SIM_SIM_HARNESS_H_
