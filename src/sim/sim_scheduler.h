// Deterministic discrete-event scheduler: the virtual-time engine behind
// the figure benchmarks. Single-threaded by design — all "parallelism" is
// modeled by virtual CPU workers in SimExecutor, which makes runs exactly
// reproducible on any host (including the 1-core machine this reproduction
// targets; see DESIGN.md).

#ifndef AODB_SIM_SIM_SCHEDULER_H_
#define AODB_SIM_SIM_SCHEDULER_H_

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "actor/executor.h"
#include "common/clock.h"

namespace aodb {

/// Virtual-time event loop. Not thread-safe: events must only be scheduled
/// from the driving thread or from within event callbacks.
class SimScheduler {
 public:
  explicit SimScheduler(Micros start = 0) : clock_(start) {}

  Micros Now() const { return clock_.Now(); }
  ManualClock* clock() { return &clock_; }

  /// Schedules `fn` at absolute virtual time `t` (clamped to now). Takes the
  /// executor's small-buffer TaskFn so posting a Task into the simulator
  /// moves the callable instead of re-wrapping it in a std::function.
  void At(Micros t, TaskFn fn) {
    if (t < Now()) t = Now();
    events_.push(Event{t, seq_++, std::move(fn)});
  }

  /// Schedules `fn` `delay` microseconds from now.
  void After(Micros delay, TaskFn fn) {
    At(Now() + (delay < 0 ? 0 : delay), std::move(fn));
  }

  /// Processes events with time <= horizon in (time, insertion) order,
  /// advancing the clock to each event's time, then to the horizon.
  /// Returns the number of events processed.
  int64_t RunUntil(Micros horizon) {
    int64_t processed = 0;
    while (!events_.empty() && events_.top().time <= horizon) {
      Event ev = std::move(const_cast<Event&>(events_.top()));
      events_.pop();
      clock_.Set(ev.time);
      ev.fn();
      ++processed;
    }
    if (horizon > Now()) clock_.Set(horizon);
    return processed;
  }

  /// Drains the queue completely (or up to max_events if >= 0).
  int64_t RunAll(int64_t max_events = -1) {
    int64_t processed = 0;
    while (!events_.empty() &&
           (max_events < 0 || processed < max_events)) {
      Event ev = std::move(const_cast<Event&>(events_.top()));
      events_.pop();
      clock_.Set(ev.time);
      ev.fn();
      ++processed;
    }
    return processed;
  }

  bool empty() const { return events_.empty(); }
  size_t pending() const { return events_.size(); }

 private:
  struct Event {
    Micros time;
    uint64_t seq;
    TaskFn fn;
    bool operator>(const Event& other) const {
      return time != other.time ? time > other.time : seq > other.seq;
    }
  };

  ManualClock clock_;
  std::priority_queue<Event, std::vector<Event>, std::greater<Event>> events_;
  uint64_t seq_ = 0;
};

}  // namespace aodb

#endif  // AODB_SIM_SIM_SCHEDULER_H_
