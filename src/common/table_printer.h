// Column-aligned plain-text table output for the benchmark harness. Every
// figure bench prints one table whose rows correspond to the series the
// paper plots.

#ifndef AODB_COMMON_TABLE_PRINTER_H_
#define AODB_COMMON_TABLE_PRINTER_H_

#include <cstdio>
#include <string>
#include <vector>

namespace aodb {

/// Accumulates rows of strings and prints them with aligned columns.
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> headers);

  /// Appends a row; its size must match the header count.
  void AddRow(std::vector<std::string> cells);

  /// Convenience cell formatters.
  static std::string Fmt(int64_t v);
  static std::string Fmt(double v, int decimals = 2);
  /// Microseconds rendered as milliseconds with 2 decimals, e.g. "12.34".
  static std::string FmtMsFromUs(int64_t us);

  /// Writes the table to `out` (default stdout).
  void Print(std::FILE* out = stdout) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace aodb

#endif  // AODB_COMMON_TABLE_PRINTER_H_
