// Streaming statistics used by SHM aggregator actors and the benchmark
// reporter: Welford online mean/variance, min/max, and fixed-window series
// aggregation (the paper reports per-minute windows with first/last dropped).

#ifndef AODB_COMMON_STATS_H_
#define AODB_COMMON_STATS_H_

#include <cstdint>
#include <vector>

#include "common/clock.h"

namespace aodb {

/// Numerically stable online aggregate: count, min, max, mean, variance
/// (Welford's algorithm). Mergeable (parallel variance formula).
class Welford {
 public:
  Welford() = default;

  void Add(double x);
  void Merge(const Welford& other);
  void Reset();

  int64_t count() const { return count_; }
  double min() const { return count_ == 0 ? 0.0 : min_; }
  double max() const { return count_ == 0 ? 0.0 : max_; }
  double mean() const { return mean_; }
  /// Population variance.
  double Variance() const;
  double StdDev() const;

 private:
  int64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// A single summarized time window, e.g. one hour of sensor readings.
struct WindowStats {
  Micros window_start = 0;
  Micros window_len = 0;
  Welford agg;
};

/// Splits a series of (timestamp, value) observations into fixed windows and
/// summarizes each. Used both by Aggregator actors (hour/day/month levels)
/// and by the benchmark reporter (1-minute windows).
class WindowedSeries {
 public:
  /// `window_len` must be positive.
  explicit WindowedSeries(Micros window_len);

  /// Adds an observation; timestamps may arrive slightly out of order but
  /// windows are keyed purely by timestamp / window_len.
  void Add(Micros ts, double value);

  /// All non-empty windows in ascending time order.
  std::vector<WindowStats> Windows() const;

  /// Windows with the first and last dropped (the paper's measurement
  /// discipline: discard warm-up and partial final window).
  std::vector<WindowStats> InteriorWindows() const;

  Micros window_len() const { return window_len_; }

 private:
  Micros window_len_;
  // Sparse map kept as sorted vector of (window index, stats); the number of
  // windows per experiment is small.
  std::vector<std::pair<int64_t, Welford>> windows_;
};

}  // namespace aodb

#endif  // AODB_COMMON_STATS_H_
