// Status / Result error model used across all public APIs of this library.
//
// Following the style of large C++ database systems (RocksDB, Arrow), no
// exceptions cross public API boundaries; fallible operations return a
// `Status`, and fallible operations that produce a value return `Result<T>`.

#ifndef AODB_COMMON_STATUS_H_
#define AODB_COMMON_STATUS_H_

#include <cassert>
#include <optional>
#include <string>
#include <type_traits>
#include <utility>
#include <variant>

namespace aodb {

/// Error categories surfaced by the library.
enum class StatusCode : int {
  kOk = 0,
  kNotFound = 1,
  kAlreadyExists = 2,
  kInvalidArgument = 3,
  kFailedPrecondition = 4,
  kTimeout = 5,
  kAborted = 6,          ///< Transaction / workflow aborted (retryable).
  kUnavailable = 7,      ///< Resource throttled or silo unreachable.
  kCorruption = 8,       ///< Storage checksum / decode failure.
  kIoError = 9,
  kUnauthorized = 10,    ///< Access-control rejection (multi-tenancy).
  kResourceExhausted = 11,
  kInternal = 12,
  kCancelled = 13,
  kOverloaded = 14,      ///< Backpressure: mailbox full or load shed; retry
                         ///< with backoff against the SAME placement (unlike
                         ///< Unavailable, which re-places/fails over).
};

/// Highest valid StatusCode value (codecs range-check decoded codes
/// against it).
constexpr StatusCode kMaxStatusCode = StatusCode::kOverloaded;

/// Human-readable name of a status code, e.g. "NotFound".
const char* StatusCodeName(StatusCode code);

/// Value-semantic status: a code plus an optional message.
///
/// The OK status carries no allocation. Construction helpers mirror the
/// code enum (`Status::NotFound("key ...")`).
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string msg)
      : code_(code), msg_(std::move(msg)) {}

  static Status OK() { return Status(); }
#define AODB_STATUS_CTOR(Name)                       \
  static Status Name(std::string msg = "") {         \
    return Status(StatusCode::k##Name, std::move(msg)); \
  }
  AODB_STATUS_CTOR(NotFound)
  AODB_STATUS_CTOR(AlreadyExists)
  AODB_STATUS_CTOR(InvalidArgument)
  AODB_STATUS_CTOR(FailedPrecondition)
  AODB_STATUS_CTOR(Timeout)
  AODB_STATUS_CTOR(Aborted)
  AODB_STATUS_CTOR(Unavailable)
  AODB_STATUS_CTOR(Corruption)
  AODB_STATUS_CTOR(IoError)
  AODB_STATUS_CTOR(Unauthorized)
  AODB_STATUS_CTOR(ResourceExhausted)
  AODB_STATUS_CTOR(Internal)
  AODB_STATUS_CTOR(Cancelled)
  AODB_STATUS_CTOR(Overloaded)
#undef AODB_STATUS_CTOR

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return msg_; }

  bool IsNotFound() const { return code_ == StatusCode::kNotFound; }
  bool IsAborted() const { return code_ == StatusCode::kAborted; }
  bool IsTimeout() const { return code_ == StatusCode::kTimeout; }
  bool IsUnavailable() const { return code_ == StatusCode::kUnavailable; }
  bool IsCorruption() const { return code_ == StatusCode::kCorruption; }
  bool IsUnauthorized() const { return code_ == StatusCode::kUnauthorized; }
  bool IsOverloaded() const { return code_ == StatusCode::kOverloaded; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && msg_ == other.msg_;
  }

 private:
  StatusCode code_;
  std::string msg_;
};

/// A value or an error. `Result<T>` is the return type of fallible
/// value-producing operations.
///
/// Note: `Result<Status>` is permitted (it is what `Future<Status>` yields);
/// there the Status is an ordinary *value* and the error channel reports
/// delivery failures.
template <typename T>
class Result {
 public:
  /// Implicit from value (success).
  Result(T value) : value_(std::move(value)) {}  // NOLINT
  /// Implicit from non-OK status (failure). Constructing from an OK status
  /// is a programming error. Unavailable when T is itself Status.
  template <typename S = T,
            typename = std::enable_if_t<!std::is_same_v<S, Status>>>
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    assert(!status_.ok());
  }

  /// Builds an error result explicitly (works for any T, including Status).
  static Result<T> FromError(Status status) {
    assert(!status.ok());
    Result<T> r;
    r.status_ = std::move(status);
    return r;
  }

  bool ok() const { return value_.has_value(); }

  /// The error status; OK when the result holds a value.
  const Status& status() const { return status_; }

  /// Precondition: ok().
  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return *std::move(value_);
  }

  const T& value_or(const T& fallback) const {
    return ok() ? *value_ : fallback;
  }

 private:
  Result() = default;

  std::optional<T> value_;
  Status status_;
};

}  // namespace aodb

/// Propagates a non-OK status from an expression, RocksDB-style.
#define AODB_RETURN_NOT_OK(expr)                  \
  do {                                            \
    ::aodb::Status _st = (expr);                  \
    if (!_st.ok()) return _st;                    \
  } while (0)

#endif  // AODB_COMMON_STATUS_H_
