// Minimal recursive-descent JSON reader shared by the DST replay-artifact
// loader (sim/explore.cc), the postmortem-bundle sanity checks, and the
// observability property tests. Covers the subset this codebase's writers
// emit: objects, arrays, numbers (incl. exponents), booleans, null, and
// strings with the standard escapes (\" \\ \/ \b \f \n \r \t \uXXXX).
// Unknown object keys can be skipped, so hand-edited artifacts stay
// loadable.

#ifndef AODB_COMMON_JSON_H_
#define AODB_COMMON_JSON_H_

#include <cstdint>
#include <functional>
#include <string>

namespace aodb {

/// Cursor-style pull reader. All Read*/Consume methods skip leading
/// whitespace and return false on malformed input without a defined cursor
/// position (abandon the reader on failure).
class JsonReader {
 public:
  explicit JsonReader(const std::string& text)
      : p_(text.data()), end_(text.data() + text.size()) {}
  /// The reader keeps a cursor into `text` — a temporary would dangle.
  explicit JsonReader(std::string&&) = delete;

  bool AtEnd();
  bool Consume(char c);
  bool Peek(char c);

  /// Reads a string literal, decoding standard escapes; \uXXXX decodes to
  /// UTF-8 (no surrogate-pair recombination — the writers here only emit
  /// \u00XX for control bytes).
  bool ReadString(std::string* out);
  bool ReadDouble(double* out);
  /// Integers parse exactly (a double round-trip would corrupt 64-bit
  /// seeds); unsigned values up to UINT64_MAX arrive via wraparound.
  bool ReadI64(int64_t* out);
  bool ReadBool(bool* out);
  bool ReadNull();

  /// Skips one value of any supported shape (for unknown keys).
  bool SkipValue();

 private:
  void Ws();
  const char* p_;
  const char* end_;
};

/// Parses {"key": value, ...}, dispatching each key to `field`. `field`
/// must consume exactly one value and return false on malformed input.
bool ReadObject(JsonReader* r,
                const std::function<bool(const std::string&)>& field);

/// Parses [value, ...], calling `element` once per element; `element` must
/// consume exactly one value.
template <typename Fn>
bool ReadArray(JsonReader* r, Fn element) {
  if (!r->Consume('[')) return false;
  if (r->Consume(']')) return true;
  do {
    if (!element()) return false;
  } while (r->Consume(','));
  return r->Consume(']');
}

/// True iff `text` is exactly one well-formed JSON value (of the supported
/// subset) followed only by whitespace. This is a real recursive parse —
/// every nested string/number/bool is validated, not just brace-balanced —
/// so the property tests use it to prove dumps survive hostile names.
bool ValidateJson(const std::string& text);

}  // namespace aodb

#endif  // AODB_COMMON_JSON_H_
