// Minimal leveled logger. Off by default above WARN to keep benchmark output
// clean; level configurable via AODB_LOG_LEVEL env var (0=debug .. 4=off).

#ifndef AODB_COMMON_LOGGING_H_
#define AODB_COMMON_LOGGING_H_

#include <cstdio>
#include <string>

namespace aodb {

enum class LogLevel : int {
  kDebug = 0,
  kInfo = 1,
  kWarn = 2,
  kError = 3,
  kOff = 4,
};

/// Global minimum level; messages below it are dropped.
LogLevel GetLogLevel();
void SetLogLevel(LogLevel level);

/// printf-style log emission; prefer the AODB_LOG macro.
void LogMessage(LogLevel level, const char* file, int line, const char* fmt,
                ...) __attribute__((format(printf, 4, 5)));

}  // namespace aodb

#define AODB_LOG(level, ...)                                              \
  do {                                                                    \
    if (static_cast<int>(::aodb::LogLevel::k##level) >=                   \
        static_cast<int>(::aodb::GetLogLevel())) {                        \
      ::aodb::LogMessage(::aodb::LogLevel::k##level, __FILE__, __LINE__,  \
                         __VA_ARGS__);                                    \
    }                                                                     \
  } while (0)

#endif  // AODB_COMMON_LOGGING_H_
