#include "common/stats.h"

#include <algorithm>
#include <cmath>

namespace aodb {

void Welford::Add(double x) {
  if (count_ == 0) {
    min_ = x;
    max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

void Welford::Merge(const Welford& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  int64_t n = count_ + other.count_;
  double delta = other.mean_ - mean_;
  double na = static_cast<double>(count_);
  double nb = static_cast<double>(other.count_);
  mean_ += delta * nb / static_cast<double>(n);
  m2_ += other.m2_ + delta * delta * na * nb / static_cast<double>(n);
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  count_ = n;
}

void Welford::Reset() { *this = Welford(); }

double Welford::Variance() const {
  return count_ == 0 ? 0.0 : m2_ / static_cast<double>(count_);
}

double Welford::StdDev() const { return std::sqrt(Variance()); }

WindowedSeries::WindowedSeries(Micros window_len) : window_len_(window_len) {}

void WindowedSeries::Add(Micros ts, double value) {
  int64_t idx = ts / window_len_;
  auto it = std::lower_bound(
      windows_.begin(), windows_.end(), idx,
      [](const auto& w, int64_t i) { return w.first < i; });
  if (it == windows_.end() || it->first != idx) {
    it = windows_.insert(it, {idx, Welford()});
  }
  it->second.Add(value);
}

std::vector<WindowStats> WindowedSeries::Windows() const {
  std::vector<WindowStats> out;
  out.reserve(windows_.size());
  for (const auto& [idx, agg] : windows_) {
    out.push_back(WindowStats{idx * window_len_, window_len_, agg});
  }
  return out;
}

std::vector<WindowStats> WindowedSeries::InteriorWindows() const {
  std::vector<WindowStats> all = Windows();
  if (all.size() <= 2) return {};
  return std::vector<WindowStats>(all.begin() + 1, all.end() - 1);
}

}  // namespace aodb
