#include "common/logging.h"

#include <atomic>
#include <cstdarg>
#include <cstdlib>
#include <mutex>

namespace aodb {

namespace {

std::atomic<int> g_level{[] {
  const char* env = std::getenv("AODB_LOG_LEVEL");
  if (env != nullptr) {
    int v = std::atoi(env);
    if (v >= 0 && v <= 4) return v;
  }
  return static_cast<int>(LogLevel::kWarn);
}()};

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}

}  // namespace

LogLevel GetLogLevel() {
  return static_cast<LogLevel>(g_level.load(std::memory_order_relaxed));
}

void SetLogLevel(LogLevel level) {
  g_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

void LogMessage(LogLevel level, const char* file, int line, const char* fmt,
                ...) {
  static std::mutex mu;
  const char* base = file;
  for (const char* p = file; *p != '\0'; ++p) {
    if (*p == '/') base = p + 1;
  }
  char msg[1024];
  va_list ap;
  va_start(ap, fmt);
  std::vsnprintf(msg, sizeof(msg), fmt, ap);
  va_end(ap);
  std::lock_guard<std::mutex> lock(mu);
  std::fprintf(stderr, "[%s %s:%d] %s\n", LevelName(level), base, line, msg);
}

}  // namespace aodb
