#include "common/status.h"

namespace aodb {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk: return "OK";
    case StatusCode::kNotFound: return "NotFound";
    case StatusCode::kAlreadyExists: return "AlreadyExists";
    case StatusCode::kInvalidArgument: return "InvalidArgument";
    case StatusCode::kFailedPrecondition: return "FailedPrecondition";
    case StatusCode::kTimeout: return "Timeout";
    case StatusCode::kAborted: return "Aborted";
    case StatusCode::kUnavailable: return "Unavailable";
    case StatusCode::kCorruption: return "Corruption";
    case StatusCode::kIoError: return "IoError";
    case StatusCode::kUnauthorized: return "Unauthorized";
    case StatusCode::kResourceExhausted: return "ResourceExhausted";
    case StatusCode::kInternal: return "Internal";
    case StatusCode::kCancelled: return "Cancelled";
    case StatusCode::kOverloaded: return "Overloaded";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeName(code_);
  if (!msg_.empty()) {
    out += ": ";
    out += msg_;
  }
  return out;
}

}  // namespace aodb
