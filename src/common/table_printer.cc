#include "common/table_printer.h"

#include <algorithm>
#include <cassert>

namespace aodb {

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void TablePrinter::AddRow(std::vector<std::string> cells) {
  assert(cells.size() == headers_.size());
  rows_.push_back(std::move(cells));
}

std::string TablePrinter::Fmt(int64_t v) { return std::to_string(v); }

std::string TablePrinter::Fmt(double v, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", decimals, v);
  return buf;
}

std::string TablePrinter::FmtMsFromUs(int64_t us) {
  return Fmt(static_cast<double>(us) / 1000.0, 2);
}

void TablePrinter::Print(std::FILE* out) const {
  std::vector<size_t> widths(headers_.size());
  for (size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      std::fprintf(out, "%-*s", static_cast<int>(widths[c] + 2),
                   row[c].c_str());
    }
    std::fprintf(out, "\n");
  };
  print_row(headers_);
  std::string sep;
  for (size_t c = 0; c < headers_.size(); ++c) {
    sep.append(widths[c], '-');
    sep.append("  ");
  }
  std::fprintf(out, "%s\n", sep.c_str());
  for (const auto& row : rows_) print_row(row);
  std::fflush(out);
}

}  // namespace aodb
