#include "common/histogram.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>

namespace aodb {

Histogram::Histogram()
    : buckets_(kOctaves * kSubBuckets, 0),
      count_(0),
      max_(0),
      min_(std::numeric_limits<int64_t>::max()),
      sum_(0),
      sum_sq_(0) {}

// Bucketing scheme: values below kSubBuckets are exact (octave 0). For a
// larger value with most-significant bit `msb`, octave = msb - kSubBucketBits
// + 1 and the sub-bucket is (value >> octave) & (kSubBuckets - 1); since the
// shifted value keeps its leading bit, sub lies in [kSubBuckets/2,
// kSubBuckets) and the bucket covers [sub << octave, (sub + 1) << octave).
int Histogram::BucketIndex(int64_t value) {
  if (value < kSubBuckets) return static_cast<int>(value);
  int msb = 63 - __builtin_clzll(static_cast<uint64_t>(value));
  int octave = msb - kSubBucketBits + 1;
  if (octave >= kOctaves) {
    octave = kOctaves - 1;
    return octave * kSubBuckets + (kSubBuckets - 1);
  }
  int sub = static_cast<int>(value >> octave) & (kSubBuckets - 1);
  return octave * kSubBuckets + sub;
}

int64_t Histogram::BucketMidpoint(int index) {
  int octave = index / kSubBuckets;
  int sub = index % kSubBuckets;
  if (octave == 0) return sub;
  int64_t lo = static_cast<int64_t>(sub) << octave;
  int64_t width = static_cast<int64_t>(1) << octave;
  return lo + width / 2;
}

void Histogram::Record(int64_t value) { RecordMultiple(value, 1); }

void Histogram::RecordMultiple(int64_t value, int64_t count) {
  if (count <= 0) return;
  if (value < 0) value = 0;
  buckets_[BucketIndex(value)] += count;
  count_ += count;
  max_ = std::max(max_, value);
  min_ = std::min(min_, value);
  sum_ += static_cast<double>(value) * static_cast<double>(count);
  sum_sq_ += static_cast<double>(value) * static_cast<double>(value) *
             static_cast<double>(count);
}

void Histogram::Merge(const Histogram& other) {
  for (size_t i = 0; i < buckets_.size(); ++i) buckets_[i] += other.buckets_[i];
  count_ += other.count_;
  max_ = std::max(max_, other.max_);
  min_ = std::min(min_, other.min_);
  sum_ += other.sum_;
  sum_sq_ += other.sum_sq_;
}

void Histogram::SubtractClamped(const Histogram& other) {
  if (other.count_ == 0) return;
  int64_t remaining = 0;
  int first = -1;
  int last = -1;
  for (size_t i = 0; i < buckets_.size(); ++i) {
    buckets_[i] = std::max<int64_t>(0, buckets_[i] - other.buckets_[i]);
    if (buckets_[i] > 0) {
      remaining += buckets_[i];
      if (first < 0) first = static_cast<int>(i);
      last = static_cast<int>(i);
    }
  }
  count_ = remaining;
  if (remaining == 0) {
    Reset();
    return;
  }
  // Moments and extrema of the survivors are only known to bucket
  // resolution; rebuild them from midpoints.
  min_ = BucketMidpoint(first);
  max_ = BucketMidpoint(last);
  sum_ = 0;
  sum_sq_ = 0;
  for (size_t i = 0; i < buckets_.size(); ++i) {
    if (buckets_[i] == 0) continue;
    double mid = static_cast<double>(BucketMidpoint(static_cast<int>(i)));
    double n = static_cast<double>(buckets_[i]);
    sum_ += mid * n;
    sum_sq_ += mid * mid * n;
  }
}

void Histogram::Reset() {
  std::fill(buckets_.begin(), buckets_.end(), 0);
  count_ = 0;
  max_ = 0;
  min_ = std::numeric_limits<int64_t>::max();
  sum_ = 0;
  sum_sq_ = 0;
}

int64_t Histogram::min() const { return count_ == 0 ? 0 : min_; }

double Histogram::Mean() const {
  return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_);
}

double Histogram::StdDev() const {
  if (count_ == 0) return 0.0;
  double n = static_cast<double>(count_);
  double mean = sum_ / n;
  double var = sum_sq_ / n - mean * mean;
  return var > 0 ? std::sqrt(var) : 0.0;
}

int64_t Histogram::Percentile(double p) const {
  if (count_ == 0) return 0;
  if (p <= 0) return min();
  if (p >= 100) return max_;
  int64_t rank = static_cast<int64_t>(
      std::ceil(p / 100.0 * static_cast<double>(count_)));
  if (rank < 1) rank = 1;
  int64_t seen = 0;
  for (size_t i = 0; i < buckets_.size(); ++i) {
    if (buckets_[i] == 0) continue;
    seen += buckets_[i];
    if (seen >= rank) {
      return std::min(BucketMidpoint(static_cast<int>(i)), max_);
    }
  }
  return max_;
}

std::string Histogram::Summary() const {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "count=%lld mean=%.1f p50=%lld p90=%lld p99=%lld "
                "p99.9=%lld max=%lld",
                static_cast<long long>(count_), Mean(),
                static_cast<long long>(Percentile(50)),
                static_cast<long long>(Percentile(90)),
                static_cast<long long>(Percentile(99)),
                static_cast<long long>(Percentile(99.9)),
                static_cast<long long>(max_));
  return buf;
}

}  // namespace aodb
