// Unified metrics registry: named counters, gauges, and concurrent
// histograms with cheap relaxed-atomic recording, plus snapshot/delta/merge
// export as an aligned text table or JSON. This is the one measurement
// substrate the runtime reports through — the wire lane, membership,
// failover, retry engines, storage providers, and per-actor turn profiling
// all register their series here (see Cluster::DumpMetrics).
//
// Recording discipline: callers resolve a metric pointer once (registration
// takes a lock) and record through it forever after (lock-free, relaxed
// atomics). Snapshots are weakly consistent — concurrent recorders may or
// may not be included — which is the right trade for monitoring.

#ifndef AODB_COMMON_TELEMETRY_H_
#define AODB_COMMON_TELEMETRY_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <utility>

#include "common/histogram.h"

namespace aodb {

/// Escapes `s` for embedding in a JSON string literal (quotes, backslashes,
/// control characters). Every JSON writer in the runtime (metrics, traces,
/// flight events, postmortem bundles) routes names through this so a dump
/// never emits invalid JSON whatever the metric/actor name.
std::string JsonEscape(const std::string& s);

/// Monotonic event count. Lock-free; safe from any thread.
class Counter {
 public:
  void Add(int64_t n = 1) { v_.fetch_add(n, std::memory_order_relaxed); }
  int64_t value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> v_{0};
};

/// Last-write-wins level (queue depth, activation count). Lock-free.
class Gauge {
 public:
  void Set(int64_t v) { v_.store(v, std::memory_order_relaxed); }
  void Add(int64_t n) { v_.fetch_add(n, std::memory_order_relaxed); }
  int64_t value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> v_{0};
};

/// Thread-safe histogram over the same log-bucket layout as Histogram.
/// Plain Histogram::Record is data-racy under concurrent writers; the
/// registry hands out this wrapper instead: every bucket is an atomic, so
/// concurrent Record calls lose nothing, and Snapshot() materializes a
/// plain Histogram for percentile queries. Min/max are tracked exactly via
/// CAS; mean/stddev in the snapshot are bucket-midpoint approximations
/// (<= ~1.6% relative error, same as the percentiles).
class ConcurrentHistogram {
 public:
  ConcurrentHistogram();

  /// Records one observation; negative values clamp to zero. Lock-free.
  void Record(int64_t value);

  int64_t count() const { return count_.load(std::memory_order_relaxed); }

  /// Weakly consistent materialization for percentile/summary queries.
  Histogram Snapshot() const;

 private:
  std::unique_ptr<std::atomic<int64_t>[]> buckets_;
  std::atomic<int64_t> count_{0};
  std::atomic<int64_t> min_;
  std::atomic<int64_t> max_{0};
};

/// Point-in-time export of a registry: plain values, independently
/// mergeable (across load-generator clients) and subtractable (interval
/// deltas around a measurement window).
struct MetricsSnapshot {
  std::map<std::string, int64_t> counters;
  std::map<std::string, int64_t> gauges;
  std::map<std::string, Histogram> histograms;

  /// This snapshot minus an earlier one: counters and histogram buckets
  /// subtract (clamped at zero); gauges keep this snapshot's level.
  MetricsSnapshot Delta(const MetricsSnapshot& earlier) const;

  /// Accumulates another snapshot: counters add, histograms merge, gauges
  /// sum (the convention for sharded recorders reporting one total).
  void Merge(const MetricsSnapshot& other);

  /// Aligned text table (name, value | histogram summary), sorted by name.
  std::string ToTable() const;

  /// One JSON object: {"counters":{...},"gauges":{...},"histograms":{name:
  /// {count,mean,p50,p90,p99,p999,max}}}. Keys are sorted (std::map), so
  /// output is deterministic.
  std::string ToJson() const;
};

/// Bounded time-series of metric deltas: each Record(t, snapshot) stores the
/// delta against the previous snapshot, so the series shows metric
/// *evolution* per interval instead of cumulative totals. Oldest entries
/// fall off past `capacity`. Mutex-guarded — the sampler ticks on a
/// background cadence, never on the message hot path.
class MetricsTimeline {
 public:
  explicit MetricsTimeline(size_t capacity = 256)
      : capacity_(capacity == 0 ? 1 : capacity) {}

  /// Appends the delta of `snap` against the previously recorded snapshot
  /// (the first call records the snapshot as-is — the delta from zero).
  void Record(int64_t t_us, const MetricsSnapshot& snap);

  size_t size() const;

  /// [{"t_us":N,"metrics":{...}}, ...] in record order (deterministic).
  std::string ToJson() const;

  void Clear();

 private:
  const size_t capacity_;
  mutable std::mutex mu_;
  bool has_prev_ = false;
  MetricsSnapshot prev_;
  std::deque<std::pair<int64_t, MetricsSnapshot>> entries_;
};

/// Named metric registry. Get* registers on first use and returns a pointer
/// stable for the registry's lifetime; record through the pointer.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  Counter* GetCounter(const std::string& name);
  Gauge* GetGauge(const std::string& name);
  ConcurrentHistogram* GetHistogram(const std::string& name);

  MetricsSnapshot Snapshot() const;

 private:
  mutable std::shared_mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<ConcurrentHistogram>> histograms_;
};

}  // namespace aodb

#endif  // AODB_COMMON_TELEMETRY_H_
