// Compact binary encoding for persisted actor state and KV-store records:
// varint / zigzag integers, IEEE doubles, length-prefixed strings and
// vectors, plus CRC32C for storage integrity.

#ifndef AODB_COMMON_CODEC_H_
#define AODB_COMMON_CODEC_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "common/status.h"

namespace aodb {

/// Append-only binary encoder.
class BufWriter {
 public:
  void PutU8(uint8_t v) { buf_.push_back(static_cast<char>(v)); }
  void PutFixed32(uint32_t v);
  void PutFixed64(uint64_t v);
  /// LEB128 variable-length unsigned integer.
  void PutVarint(uint64_t v);
  /// ZigZag-encoded signed integer.
  void PutSigned(int64_t v) {
    PutVarint((static_cast<uint64_t>(v) << 1) ^
              static_cast<uint64_t>(v >> 63));
  }
  void PutDouble(double v);
  void PutBool(bool v) { PutU8(v ? 1 : 0); }
  /// Length-prefixed byte string.
  void PutString(const std::string& s);
  void PutBytes(const void* data, size_t len);

  template <typename T, typename Fn>
  void PutVector(const std::vector<T>& v, Fn encode_elem) {
    PutVarint(v.size());
    for (const T& e : v) encode_elem(*this, e);
  }

  /// Pre-sizes the buffer (e.g. to the last frame's size on this thread) so
  /// steady-state encoding appends without reallocating.
  void Reserve(size_t n) { buf_.reserve(n); }

  const std::string& data() const { return buf_; }
  std::string Release() { return std::move(buf_); }
  size_t size() const { return buf_.size(); }

 private:
  std::string buf_;
};

/// Sequential binary decoder over a byte string. All getters return a
/// Status and leave the cursor unchanged on failure.
class BufReader {
 public:
  explicit BufReader(std::string_view data) : data_(data), pos_(0) {}

  Status GetU8(uint8_t* out);
  Status GetFixed32(uint32_t* out);
  Status GetFixed64(uint64_t* out);
  Status GetVarint(uint64_t* out);
  Status GetSigned(int64_t* out);
  Status GetDouble(double* out);
  Status GetBool(bool* out);
  Status GetString(std::string* out);

  template <typename T, typename Fn>
  Status GetVector(std::vector<T>* out, Fn decode_elem) {
    uint64_t n = 0;
    AODB_RETURN_NOT_OK(GetVarint(&n));
    if (n > data_.size()) return Status::Corruption("vector length too large");
    out->clear();
    out->reserve(n);
    for (uint64_t i = 0; i < n; ++i) {
      T elem{};
      AODB_RETURN_NOT_OK(decode_elem(*this, &elem));
      out->push_back(std::move(elem));
    }
    return Status::OK();
  }

  size_t remaining() const { return data_.size() - pos_; }
  bool AtEnd() const { return pos_ == data_.size(); }

 private:
  std::string_view data_;
  size_t pos_;
};

/// CRC32C (Castagnoli, software table implementation) used to checksum
/// storage log records.
uint32_t Crc32c(const void* data, size_t len);
uint32_t Crc32c(const std::string& s);

}  // namespace aodb

#endif  // AODB_COMMON_CODEC_H_
