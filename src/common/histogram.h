// Log-bucketed latency histogram (HdrHistogram-style) for benchmark
// reporting: constant-time record, approximate percentiles with bounded
// relative error, mergeable across load-generator clients.

#ifndef AODB_COMMON_HISTOGRAM_H_
#define AODB_COMMON_HISTOGRAM_H_

#include <cstdint>
#include <string>
#include <vector>

namespace aodb {

/// Histogram over non-negative integer values (typically latency in
/// microseconds). Buckets grow geometrically: 64 linear sub-buckets per
/// power of two, giving <= ~1.6% relative error on percentile queries.
///
/// NOT thread-safe: Record under concurrent writers is a data race. Use
/// ConcurrentHistogram (common/telemetry.h) for shared recording and
/// Snapshot() it into a Histogram for queries.
class Histogram {
 public:
  Histogram();

  /// Records one observation. Negative values are clamped to zero.
  void Record(int64_t value);

  /// Records `count` observations of the same value.
  void RecordMultiple(int64_t value, int64_t count);

  /// Adds all observations of `other` into this histogram.
  void Merge(const Histogram& other);

  /// Removes `other`'s observations from this histogram (interval deltas:
  /// end-of-window snapshot minus start-of-window snapshot). Buckets and
  /// count clamp at zero; min/max/mean are recomputed from the surviving
  /// buckets, so they carry bucket-midpoint error after subtraction.
  void SubtractClamped(const Histogram& other);

  /// Removes all observations.
  void Reset();

  int64_t count() const { return count_; }
  int64_t min() const;
  int64_t max() const { return max_; }
  double Mean() const;
  double StdDev() const;

  /// Value at percentile p in [0, 100]. Returns 0 for an empty histogram.
  int64_t Percentile(double p) const;

  /// One-line summary: count, mean, p50/p90/p99/p99.9, max.
  std::string Summary() const;

  // Bucket layout, shared with ConcurrentHistogram (common/telemetry.h) so
  // its atomic buckets rebuild a Histogram without re-bucketing error (the
  // midpoint of any bucket indexes back to the same bucket).
  static constexpr int kSubBucketBits = 6;  // 64 sub-buckets per octave.
  static constexpr int kSubBuckets = 1 << kSubBucketBits;
  static constexpr int kOctaves = 40;       // covers up to ~2^40 us.
  static constexpr int kBucketCount = kOctaves * kSubBuckets;

  static int BucketIndex(int64_t value);
  static int64_t BucketMidpoint(int index);

 private:
  std::vector<int64_t> buckets_;
  int64_t count_;
  int64_t max_;
  int64_t min_;
  double sum_;
  double sum_sq_;
};

}  // namespace aodb

#endif  // AODB_COMMON_HISTOGRAM_H_
