// Log-bucketed latency histogram (HdrHistogram-style) for benchmark
// reporting: constant-time record, approximate percentiles with bounded
// relative error, mergeable across load-generator clients.

#ifndef AODB_COMMON_HISTOGRAM_H_
#define AODB_COMMON_HISTOGRAM_H_

#include <cstdint>
#include <string>
#include <vector>

namespace aodb {

/// Histogram over non-negative integer values (typically latency in
/// microseconds). Buckets grow geometrically: 64 linear sub-buckets per
/// power of two, giving <= ~1.6% relative error on percentile queries.
class Histogram {
 public:
  Histogram();

  /// Records one observation. Negative values are clamped to zero.
  void Record(int64_t value);

  /// Records `count` observations of the same value.
  void RecordMultiple(int64_t value, int64_t count);

  /// Adds all observations of `other` into this histogram.
  void Merge(const Histogram& other);

  /// Removes all observations.
  void Reset();

  int64_t count() const { return count_; }
  int64_t min() const;
  int64_t max() const { return max_; }
  double Mean() const;
  double StdDev() const;

  /// Value at percentile p in [0, 100]. Returns 0 for an empty histogram.
  int64_t Percentile(double p) const;

  /// One-line summary: count, mean, p50/p90/p99/p99.9, max.
  std::string Summary() const;

 private:
  static constexpr int kSubBucketBits = 6;  // 64 sub-buckets per octave.
  static constexpr int kSubBuckets = 1 << kSubBucketBits;
  static constexpr int kOctaves = 40;       // covers up to ~2^40 us.

  static int BucketIndex(int64_t value);
  static int64_t BucketMidpoint(int index);

  std::vector<int64_t> buckets_;
  int64_t count_;
  int64_t max_;
  int64_t min_;
  double sum_;
  double sum_sq_;
};

}  // namespace aodb

#endif  // AODB_COMMON_HISTOGRAM_H_
