#include "common/telemetry.h"

#include <cstdio>
#include <limits>
#include <mutex>
#include <vector>

namespace aodb {

// --- ConcurrentHistogram -----------------------------------------------------

ConcurrentHistogram::ConcurrentHistogram()
    : buckets_(new std::atomic<int64_t>[Histogram::kBucketCount]),
      min_(std::numeric_limits<int64_t>::max()) {
  for (int i = 0; i < Histogram::kBucketCount; ++i) {
    buckets_[i].store(0, std::memory_order_relaxed);
  }
}

void ConcurrentHistogram::Record(int64_t value) {
  if (value < 0) value = 0;
  buckets_[Histogram::BucketIndex(value)].fetch_add(
      1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  int64_t seen = min_.load(std::memory_order_relaxed);
  while (value < seen &&
         !min_.compare_exchange_weak(seen, value, std::memory_order_relaxed)) {
  }
  seen = max_.load(std::memory_order_relaxed);
  while (value > seen &&
         !max_.compare_exchange_weak(seen, value, std::memory_order_relaxed)) {
  }
}

Histogram ConcurrentHistogram::Snapshot() const {
  // One pass to find the extreme non-empty buckets, so the exactly tracked
  // min/max can replace (not add to) one midpoint observation each —
  // the rebuilt histogram's count matches the recorded count.
  int lo_bucket = -1;
  int hi_bucket = -1;
  for (int i = 0; i < Histogram::kBucketCount; ++i) {
    if (buckets_[i].load(std::memory_order_relaxed) > 0) {
      if (lo_bucket < 0) lo_bucket = i;
      hi_bucket = i;
    }
  }
  Histogram h;
  if (lo_bucket < 0) return h;
  int64_t lo = min_.load(std::memory_order_relaxed);
  int64_t hi = max_.load(std::memory_order_relaxed);
  bool exact = lo != std::numeric_limits<int64_t>::max();
  for (int i = lo_bucket; i <= hi_bucket; ++i) {
    int64_t n = buckets_[i].load(std::memory_order_relaxed);
    if (n <= 0) continue;
    if (exact && lo == hi) {
      // Every observation was the same value; rebuild it exactly.
      h.RecordMultiple(lo, n);
      continue;
    }
    if (exact && i == lo_bucket) {
      h.Record(lo);
      --n;
    }
    if (exact && i == hi_bucket && n > 0) {
      h.Record(hi);
      --n;
    }
    if (n > 0) h.RecordMultiple(Histogram::BucketMidpoint(i), n);
  }
  return h;
}

// --- MetricsSnapshot ---------------------------------------------------------

MetricsSnapshot MetricsSnapshot::Delta(const MetricsSnapshot& earlier) const {
  MetricsSnapshot out = *this;
  for (auto& [name, v] : out.counters) {
    auto it = earlier.counters.find(name);
    if (it != earlier.counters.end()) {
      v = v >= it->second ? v - it->second : 0;
    }
  }
  for (auto& [name, h] : out.histograms) {
    auto it = earlier.histograms.find(name);
    if (it != earlier.histograms.end()) h.SubtractClamped(it->second);
  }
  return out;
}

void MetricsSnapshot::Merge(const MetricsSnapshot& other) {
  for (const auto& [name, v] : other.counters) counters[name] += v;
  for (const auto& [name, v] : other.gauges) gauges[name] += v;
  for (const auto& [name, h] : other.histograms) {
    auto [it, inserted] = histograms.emplace(name, h);
    if (!inserted) it->second.Merge(h);
  }
}

std::string MetricsSnapshot::ToTable() const {
  size_t width = 4;
  for (const auto& [name, v] : counters) width = std::max(width, name.size());
  for (const auto& [name, v] : gauges) width = std::max(width, name.size());
  for (const auto& [name, h] : histograms) {
    width = std::max(width, name.size());
  }
  std::string out;
  char buf[512];
  auto row = [&](const std::string& name, const std::string& value) {
    std::snprintf(buf, sizeof(buf), "%-*s  %s\n", static_cast<int>(width),
                  name.c_str(), value.c_str());
    out += buf;
  };
  for (const auto& [name, v] : counters) row(name, std::to_string(v));
  for (const auto& [name, v] : gauges) row(name, std::to_string(v));
  for (const auto& [name, h] : histograms) row(name, h.Summary());
  return out;
}

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char hex[8];
          std::snprintf(hex, sizeof(hex), "\\u%04x", c);
          out += hex;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string MetricsSnapshot::ToJson() const {
  std::string out = "{\"counters\":{";
  bool first = true;
  for (const auto& [name, v] : counters) {
    if (!first) out += ',';
    first = false;
    out += '"' + JsonEscape(name) + "\":" + std::to_string(v);
  }
  out += "},\"gauges\":{";
  first = true;
  for (const auto& [name, v] : gauges) {
    if (!first) out += ',';
    first = false;
    out += '"' + JsonEscape(name) + "\":" + std::to_string(v);
  }
  out += "},\"histograms\":{";
  first = true;
  char buf[320];
  for (const auto& [name, h] : histograms) {
    if (!first) out += ',';
    first = false;
    std::snprintf(
        buf, sizeof(buf),
        "\"%s\":{\"count\":%lld,\"mean\":%.2f,\"min\":%lld,\"p50\":%lld,"
        "\"p90\":%lld,\"p99\":%lld,\"p999\":%lld,\"max\":%lld}",
        JsonEscape(name).c_str(), static_cast<long long>(h.count()), h.Mean(),
        static_cast<long long>(h.min()),
        static_cast<long long>(h.Percentile(50)),
        static_cast<long long>(h.Percentile(90)),
        static_cast<long long>(h.Percentile(99)),
        static_cast<long long>(h.Percentile(99.9)),
        static_cast<long long>(h.max()));
    out += buf;
  }
  out += "}}";
  return out;
}

// --- MetricsTimeline ---------------------------------------------------------

void MetricsTimeline::Record(int64_t t_us, const MetricsSnapshot& snap) {
  std::lock_guard<std::mutex> lock(mu_);
  MetricsSnapshot delta = has_prev_ ? snap.Delta(prev_) : snap;
  prev_ = snap;
  has_prev_ = true;
  entries_.emplace_back(t_us, std::move(delta));
  while (entries_.size() > capacity_) entries_.pop_front();
}

size_t MetricsTimeline::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.size();
}

std::string MetricsTimeline::ToJson() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out = "[";
  bool first = true;
  for (const auto& [t_us, snap] : entries_) {
    if (!first) out += ',';
    first = false;
    out += "{\"t_us\":" + std::to_string(t_us) +
           ",\"metrics\":" + snap.ToJson() + "}";
  }
  out += ']';
  return out;
}

void MetricsTimeline::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  entries_.clear();
  has_prev_ = false;
  prev_ = MetricsSnapshot();
}

// --- MetricsRegistry ---------------------------------------------------------

Counter* MetricsRegistry::GetCounter(const std::string& name) {
  {
    std::shared_lock<std::shared_mutex> lock(mu_);
    auto it = counters_.find(name);
    if (it != counters_.end()) return it->second.get();
  }
  std::unique_lock<std::shared_mutex> lock(mu_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return slot.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name) {
  {
    std::shared_lock<std::shared_mutex> lock(mu_);
    auto it = gauges_.find(name);
    if (it != gauges_.end()) return it->second.get();
  }
  std::unique_lock<std::shared_mutex> lock(mu_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return slot.get();
}

ConcurrentHistogram* MetricsRegistry::GetHistogram(const std::string& name) {
  {
    std::shared_lock<std::shared_mutex> lock(mu_);
    auto it = histograms_.find(name);
    if (it != histograms_.end()) return it->second.get();
  }
  std::unique_lock<std::shared_mutex> lock(mu_);
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<ConcurrentHistogram>();
  return slot.get();
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  MetricsSnapshot snap;
  std::shared_lock<std::shared_mutex> lock(mu_);
  for (const auto& [name, c] : counters_) snap.counters[name] = c->value();
  for (const auto& [name, g] : gauges_) snap.gauges[name] = g->value();
  for (const auto& [name, h] : histograms_) {
    snap.histograms.emplace(name, h->Snapshot());
  }
  return snap;
}

}  // namespace aodb
