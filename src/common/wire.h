// Wire codec trait layer: the serialization boundary for cross-silo actor
// invocations. WireCodec<T> maps a value type to its BufWriter/BufReader
// encoding; types used as arguments or results of cross-silo actor methods
// must have a specialization (most domain structs get one for free through
// their Encode/Decode members, which double as the persistence format).
//
// Frames on the wire carry a CRC32C trailer (WireSeal / WireOpen), so any
// in-flight corruption — bit flips, truncation — surfaces deterministically
// as Status::Corruption at the receiver, never as undefined behavior in a
// decoder.

#ifndef AODB_COMMON_WIRE_H_
#define AODB_COMMON_WIRE_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <tuple>
#include <type_traits>
#include <vector>

#include "common/codec.h"
#include "common/status.h"

namespace aodb {

/// Primary template: intentionally empty. A type is wire-encodable iff a
/// specialization (below, or user-provided) supplies
///   static void Encode(BufWriter*, const T&);
///   static Status Decode(BufReader*, T*);
template <typename T, typename Enable = void>
struct WireCodec {};

/// True iff WireCodec<T> has working Encode/Decode.
template <typename T, typename = void>
struct HasWireCodec : std::false_type {};
template <typename T>
struct HasWireCodec<
    T, std::void_t<decltype(WireCodec<T>::Encode(std::declval<BufWriter*>(),
                                                 std::declval<const T&>())),
                   decltype(WireCodec<T>::Decode(std::declval<BufReader*>(),
                                                 std::declval<T*>()))>>
    : std::true_type {};

/// True iff every listed type is wire-encodable and default-constructible
/// (decoding builds the value before filling it in).
template <typename... Ts>
struct WireSupported
    : std::conjunction<HasWireCodec<Ts>...,
                       std::is_default_constructible<Ts>...> {};

// --- Built-in specializations ------------------------------------------------

/// Integers (signed via zigzag, unsigned via varint). bool is separate.
template <typename T>
struct WireCodec<T, std::enable_if_t<std::is_integral_v<T> &&
                                     !std::is_same_v<T, bool>>> {
  static void Encode(BufWriter* w, const T& v) {
    if constexpr (std::is_signed_v<T>) {
      w->PutSigned(static_cast<int64_t>(v));
    } else {
      w->PutVarint(static_cast<uint64_t>(v));
    }
  }
  static Status Decode(BufReader* r, T* out) {
    if constexpr (std::is_signed_v<T>) {
      int64_t v = 0;
      AODB_RETURN_NOT_OK(r->GetSigned(&v));
      *out = static_cast<T>(v);
    } else {
      uint64_t v = 0;
      AODB_RETURN_NOT_OK(r->GetVarint(&v));
      *out = static_cast<T>(v);
    }
    return Status::OK();
  }
};

template <>
struct WireCodec<bool> {
  static void Encode(BufWriter* w, const bool& v) { w->PutBool(v); }
  static Status Decode(BufReader* r, bool* out) { return r->GetBool(out); }
};

template <>
struct WireCodec<double> {
  static void Encode(BufWriter* w, const double& v) { w->PutDouble(v); }
  static Status Decode(BufReader* r, double* out) { return r->GetDouble(out); }
};

template <>
struct WireCodec<std::string> {
  static void Encode(BufWriter* w, const std::string& v) { w->PutString(v); }
  static Status Decode(BufReader* r, std::string* out) {
    return r->GetString(out);
  }
};

template <>
struct WireCodec<Status> {
  static void Encode(BufWriter* w, const Status& v) {
    w->PutVarint(static_cast<uint64_t>(v.code()));
    w->PutString(v.message());
  }
  static Status Decode(BufReader* r, Status* out) {
    uint64_t code = 0;
    std::string msg;
    AODB_RETURN_NOT_OK(r->GetVarint(&code));
    AODB_RETURN_NOT_OK(r->GetString(&msg));
    if (code > static_cast<uint64_t>(kMaxStatusCode)) {
      return Status::Corruption("status code out of range");
    }
    *out = Status(static_cast<StatusCode>(code), std::move(msg));
    return Status::OK();
  }
};

/// Enums travel as their underlying integer, range-checked by the caller's
/// domain logic (the codec only guarantees a clean decode).
template <typename T>
struct WireCodec<T, std::enable_if_t<std::is_enum_v<T>>> {
  using U = std::underlying_type_t<T>;
  static void Encode(BufWriter* w, const T& v) {
    WireCodec<U>::Encode(w, static_cast<U>(v));
  }
  static Status Decode(BufReader* r, T* out) {
    U v{};
    AODB_RETURN_NOT_OK(WireCodec<U>::Decode(r, &v));
    *out = static_cast<T>(v);
    return Status::OK();
  }
};

/// Any type providing member `void Encode(BufWriter*) const` and
/// `Status Decode(BufReader*)` — the persistence-codec convention used by
/// the SHM and cattle domain structs.
template <typename T>
struct WireCodec<
    T, std::void_t<decltype(std::declval<const T&>().Encode(
                       std::declval<BufWriter*>())),
                   std::enable_if_t<std::is_same_v<
                       decltype(std::declval<T&>().Decode(
                           std::declval<BufReader*>())),
                       Status>>>> {
  static void Encode(BufWriter* w, const T& v) { v.Encode(w); }
  static Status Decode(BufReader* r, T* out) { return out->Decode(r); }
};

template <typename T>
struct WireCodec<std::vector<T>, std::enable_if_t<HasWireCodec<T>::value>> {
  static void Encode(BufWriter* w, const std::vector<T>& v) {
    w->PutVarint(v.size());
    for (const T& e : v) WireCodec<T>::Encode(w, e);
  }
  static Status Decode(BufReader* r, std::vector<T>* out) {
    uint64_t n = 0;
    AODB_RETURN_NOT_OK(r->GetVarint(&n));
    // Every element costs at least one byte on the wire, so a length that
    // exceeds the remaining input is corrupt — reject before reserving.
    if (n > r->remaining()) {
      return Status::Corruption("wire vector length exceeds payload");
    }
    out->clear();
    out->reserve(n);
    for (uint64_t i = 0; i < n; ++i) {
      T elem{};
      AODB_RETURN_NOT_OK(WireCodec<T>::Decode(r, &elem));
      out->push_back(std::move(elem));
    }
    return Status::OK();
  }
};

// --- Tuples (argument lists) -------------------------------------------------

template <typename... Ts>
void WireEncodeTuple(BufWriter* w, const std::tuple<Ts...>& t) {
  std::apply([w](const Ts&... vs) { (WireCodec<Ts>::Encode(w, vs), ...); }, t);
}

template <typename... Ts>
Status WireDecodeTuple(BufReader* r, std::tuple<Ts...>* t) {
  Status st;
  auto step = [&](auto& v) {
    using V = std::decay_t<decltype(v)>;
    if (st.ok()) st = WireCodec<V>::Decode(r, &v);
  };
  std::apply([&](Ts&... vs) { (step(vs), ...); }, *t);
  return st;
}

// --- Result<T> (reply payloads) ----------------------------------------------

template <typename T>
void WireEncodeResult(BufWriter* w, const Result<T>& r) {
  w->PutBool(r.ok());
  if (r.ok()) {
    WireCodec<T>::Encode(w, r.value());
  } else {
    // The error branch is type-erased: any decoder can read it without
    // knowing T (used for transport-level error replies).
    w->PutVarint(static_cast<uint64_t>(r.status().code()));
    w->PutString(r.status().message());
  }
}

template <typename T>
Result<T> WireDecodeResult(BufReader* r) {
  bool ok = false;
  if (!r->GetBool(&ok).ok()) {
    return Result<T>::FromError(Status::Corruption("wire result flag"));
  }
  if (ok) {
    T v{};
    Status st = WireCodec<T>::Decode(r, &v);
    if (!st.ok()) {
      return Result<T>::FromError(
          st.IsCorruption() ? st : Status::Corruption(st.ToString()));
    }
    return Result<T>(std::move(v));
  }
  uint64_t code = 0;
  std::string msg;
  if (!r->GetVarint(&code).ok() || !r->GetString(&msg).ok() || code == 0 ||
      code > static_cast<uint64_t>(kMaxStatusCode)) {
    return Result<T>::FromError(Status::Corruption("wire result error"));
  }
  return Result<T>::FromError(Status(static_cast<StatusCode>(code), msg));
}

// --- Framing -----------------------------------------------------------------

/// Appends a little-endian CRC32C trailer over the payload.
inline std::string WireSeal(std::string payload) {
  uint32_t crc = Crc32c(payload.data(), payload.size());
  char tail[4] = {static_cast<char>(crc & 0xff),
                  static_cast<char>((crc >> 8) & 0xff),
                  static_cast<char>((crc >> 16) & 0xff),
                  static_cast<char>((crc >> 24) & 0xff)};
  payload.append(tail, 4);
  return payload;
}

/// Verifies and strips the CRC trailer. Any mismatch — bit flip, truncated
/// frame — returns Status::Corruption; `payload` views into `frame`.
inline Status WireOpen(std::string_view frame, std::string_view* payload) {
  if (frame.size() < 4) return Status::Corruption("wire frame truncated");
  size_t n = frame.size() - 4;
  uint32_t stored = static_cast<uint8_t>(frame[n]) |
                    (static_cast<uint32_t>(static_cast<uint8_t>(frame[n + 1]))
                     << 8) |
                    (static_cast<uint32_t>(static_cast<uint8_t>(frame[n + 2]))
                     << 16) |
                    (static_cast<uint32_t>(static_cast<uint8_t>(frame[n + 3]))
                     << 24);
  if (stored != Crc32c(frame.data(), n)) {
    return Status::Corruption("wire frame checksum mismatch");
  }
  *payload = frame.substr(0, n);
  return Status::OK();
}

}  // namespace aodb

#endif  // AODB_COMMON_WIRE_H_
