// Pluggable time source. The real actor runtime uses the wall clock; the
// discrete-event simulator advances a manual clock in virtual time. All
// timestamps in the library are microseconds on the owning clock.

#ifndef AODB_COMMON_CLOCK_H_
#define AODB_COMMON_CLOCK_H_

#include <atomic>
#include <cstdint>

namespace aodb {

/// Microsecond timestamp. Real mode: microseconds since steady-clock epoch.
/// Simulated mode: virtual microseconds since simulation start.
using Micros = int64_t;

constexpr Micros kMicrosPerMilli = 1000;
constexpr Micros kMicrosPerSecond = 1000 * 1000;

/// Abstract monotonic time source.
class Clock {
 public:
  virtual ~Clock() = default;
  /// Current time in microseconds. Monotone non-decreasing.
  virtual Micros Now() const = 0;
};

/// Wall-clock time source backed by std::chrono::steady_clock.
class RealClock final : public Clock {
 public:
  Micros Now() const override;
  /// Process-wide singleton.
  static RealClock* Instance();
};

/// Manually advanced clock, used by the discrete-event simulator and by
/// deterministic unit tests.
class ManualClock final : public Clock {
 public:
  explicit ManualClock(Micros start = 0) : now_(start) {}
  Micros Now() const override { return now_.load(std::memory_order_acquire); }
  /// Moves time forward by `delta` microseconds.
  void Advance(Micros delta) {
    now_.fetch_add(delta, std::memory_order_acq_rel);
  }
  /// Jumps to an absolute time. Must not move backwards.
  void Set(Micros t) { now_.store(t, std::memory_order_release); }

 private:
  std::atomic<Micros> now_;
};

}  // namespace aodb

#endif  // AODB_COMMON_CLOCK_H_
