// A std::function replacement with a configurable small-buffer size, used on
// the scheduling hot path so that per-message callables (actor turn
// closures, executor tasks, future continuations) do not heap-allocate.
//
// std::function's inline buffer is two pointers on the common ABIs, so the
// typical actor-call closure — a member-function pointer, an argument tuple,
// a promise, and routing fields — always spills to the heap, one allocation
// per message. SmallFunction<Sig, InlineBytes> stores callables up to
// InlineBytes in place and only falls back to the heap beyond that.
//
// Semantics match std::function where it matters here: copyable (envelopes
// are copied for duplicate-delivery fault injection and failover tracking),
// callable via a const operator(), contextually convertible to bool. Like
// std::function, stored callables must be copy-constructible.

#ifndef AODB_COMMON_SMALL_FUNCTION_H_
#define AODB_COMMON_SMALL_FUNCTION_H_

#include <cstddef>
#include <functional>
#include <new>
#include <type_traits>
#include <utility>

namespace aodb {

template <typename Sig, size_t InlineBytes = 48>
class SmallFunction;

template <typename R, typename... Args, size_t InlineBytes>
class SmallFunction<R(Args...), InlineBytes> {
  static_assert(InlineBytes >= sizeof(void*),
                "buffer must at least hold the heap fallback pointer");

 public:
  SmallFunction() = default;
  SmallFunction(std::nullptr_t) {}  // NOLINT(google-explicit-constructor)

  template <typename F,
            typename D = std::decay_t<F>,
            typename = std::enable_if_t<
                !std::is_same_v<D, SmallFunction> &&
                std::is_invocable_r_v<R, D&, Args...>>>
  SmallFunction(F&& f) {  // NOLINT(google-explicit-constructor)
    Construct(std::forward<F>(f));
  }

  SmallFunction(const SmallFunction& other) : ops_(other.ops_) {
    if (ops_ != nullptr) ops_->copy(other.buf_, buf_);
  }

  SmallFunction(SmallFunction&& other) noexcept : ops_(other.ops_) {
    if (ops_ != nullptr) {
      ops_->relocate(other.buf_, buf_);
      other.ops_ = nullptr;
    }
  }

  SmallFunction& operator=(const SmallFunction& other) {
    if (this != &other) {
      Reset();
      if (other.ops_ != nullptr) {
        other.ops_->copy(other.buf_, buf_);
        ops_ = other.ops_;
      }
    }
    return *this;
  }

  SmallFunction& operator=(SmallFunction&& other) noexcept {
    if (this != &other) {
      Reset();
      if (other.ops_ != nullptr) {
        other.ops_->relocate(other.buf_, buf_);
        ops_ = other.ops_;
        other.ops_ = nullptr;
      }
    }
    return *this;
  }

  SmallFunction& operator=(std::nullptr_t) {
    Reset();
    return *this;
  }

  template <typename F,
            typename D = std::decay_t<F>,
            typename = std::enable_if_t<
                !std::is_same_v<D, SmallFunction> &&
                std::is_invocable_r_v<R, D&, Args...>>>
  SmallFunction& operator=(F&& f) {
    Reset();
    Construct(std::forward<F>(f));
    return *this;
  }

  ~SmallFunction() { Reset(); }

  explicit operator bool() const { return ops_ != nullptr; }

  R operator()(Args... args) const {
    return ops_->invoke(buf_, std::forward<Args>(args)...);
  }

 private:
  /// Manual vtable: one static instance per stored callable type.
  struct Ops {
    R (*invoke)(const void* storage, Args&&... args);
    void (*copy)(const void* src_storage, void* dst_storage);
    /// Move-constructs into dst and destroys src.
    void (*relocate)(void* src_storage, void* dst_storage);
    void (*destroy)(void* storage);
  };

  template <typename F>
  static constexpr bool StoredInline() {
    return sizeof(F) <= InlineBytes &&
           alignof(F) <= alignof(std::max_align_t) &&
           std::is_nothrow_move_constructible_v<F>;
  }

  template <typename F>
  struct InlineOps {
    static F* Get(const void* storage) {
      return static_cast<F*>(const_cast<void*>(storage));
    }
    static R Invoke(const void* storage, Args&&... args) {
      return std::invoke(*Get(storage), std::forward<Args>(args)...);
    }
    static void Copy(const void* src, void* dst) { new (dst) F(*Get(src)); }
    static void Relocate(void* src, void* dst) {
      F* f = Get(src);
      new (dst) F(std::move(*f));
      f->~F();
    }
    static void Destroy(void* storage) { Get(storage)->~F(); }
    static constexpr Ops kOps = {&Invoke, &Copy, &Relocate, &Destroy};
  };

  template <typename F>
  struct HeapOps {
    static F* Get(const void* storage) {
      return *static_cast<F* const*>(storage);
    }
    static R Invoke(const void* storage, Args&&... args) {
      return std::invoke(*Get(storage), std::forward<Args>(args)...);
    }
    static void Copy(const void* src, void* dst) {
      *static_cast<F**>(dst) = new F(*Get(src));
    }
    static void Relocate(void* src, void* dst) {
      *static_cast<F**>(dst) = *static_cast<F**>(src);
    }
    static void Destroy(void* storage) { delete Get(storage); }
    static constexpr Ops kOps = {&Invoke, &Copy, &Relocate, &Destroy};
  };

  template <typename F>
  void Construct(F&& f) {
    using D = std::decay_t<F>;
    static_assert(std::is_copy_constructible_v<D>,
                  "SmallFunction requires copy-constructible callables "
                  "(like std::function)");
    if constexpr (StoredInline<D>()) {
      new (static_cast<void*>(buf_)) D(std::forward<F>(f));
      ops_ = &InlineOps<D>::kOps;
    } else {
      *reinterpret_cast<D**>(buf_) = new D(std::forward<F>(f));
      ops_ = &HeapOps<D>::kOps;
    }
  }

  void Reset() {
    if (ops_ != nullptr) {
      ops_->destroy(buf_);
      ops_ = nullptr;
    }
  }

  alignas(std::max_align_t) mutable unsigned char buf_[InlineBytes];
  const Ops* ops_ = nullptr;
};

template <typename Sig, size_t N>
bool operator==(const SmallFunction<Sig, N>& f, std::nullptr_t) {
  return !f;
}
template <typename Sig, size_t N>
bool operator!=(const SmallFunction<Sig, N>& f, std::nullptr_t) {
  return static_cast<bool>(f);
}

}  // namespace aodb

#endif  // AODB_COMMON_SMALL_FUNCTION_H_
