// Unified retry/backoff policy used by every retrying component in the
// library: the workflow engine, the 2PC transaction coordinator, persistent
// actor state I/O, and the platform client paths. One policy vocabulary
// (exponential backoff, multiplicative growth, jitter, attempt cap, elapsed
// deadline) replaces the ad-hoc per-component retry loops, so failure
// behaviour is configurable and testable in one place.

#ifndef AODB_COMMON_RETRY_H_
#define AODB_COMMON_RETRY_H_

#include <algorithm>
#include <optional>

#include "common/clock.h"
#include "common/rng.h"
#include "common/status.h"

namespace aodb {

/// Exponential-backoff retry policy. Defaults suit sub-second cluster
/// operations: up to 5 retries starting at 10 ms, doubling to a 1 s cap,
/// with +/-20% jitter to decorrelate competing retriers.
struct RetryPolicy {
  /// Maximum number of retries after the initial attempt (0 disables
  /// retrying entirely).
  int max_retries = 5;
  Micros initial_backoff_us = 10 * kMicrosPerMilli;
  Micros max_backoff_us = kMicrosPerSecond;
  /// Backoff growth factor per retry.
  double multiplier = 2.0;
  /// Each backoff is multiplied by Uniform(1 - jitter, 1 + jitter). Zero
  /// gives fully deterministic spacing.
  double jitter = 0.2;
  /// Total elapsed-time budget across all attempts; once the next backoff
  /// would exceed it the operation fails with its last error (0 = no
  /// deadline).
  Micros deadline_us = 0;

  /// A policy that never retries.
  static RetryPolicy None() {
    RetryPolicy p;
    p.max_retries = 0;
    return p;
  }
};

/// True for the transiently-failing status codes a retry may heal:
/// Unavailable (silo down / storage throttled), Timeout, Aborted
/// (optimistic lock collisions), and Overloaded (bounded mailbox full /
/// load shed — the target is alive, just saturated; a jittered backoff
/// gives it time to drain, and unlike Unavailable no failover re-placement
/// is involved).
inline bool IsTransient(const Status& st) {
  return st.IsUnavailable() || st.IsTimeout() || st.IsAborted() ||
         st.IsOverloaded();
}

/// Tracks one retried operation's attempts against a policy. Seeded, so the
/// jittered backoff sequence is reproducible in simulation.
class RetryState {
 public:
  RetryState(const RetryPolicy& policy, uint64_t seed)
      : policy_(policy), rng_(seed) {}

  /// Returns the delay to wait before the next retry, or nullopt when the
  /// budget (attempt cap or elapsed deadline) is exhausted. `elapsed_us` is
  /// the time since the first attempt started.
  std::optional<Micros> NextBackoff(Micros elapsed_us) {
    if (attempts_ >= policy_.max_retries) return std::nullopt;
    double base = static_cast<double>(policy_.initial_backoff_us);
    for (int i = 0; i < attempts_; ++i) base *= policy_.multiplier;
    base = std::min(base, static_cast<double>(policy_.max_backoff_us));
    if (policy_.jitter > 0) {
      base *= rng_.Uniform(1.0 - policy_.jitter, 1.0 + policy_.jitter);
    }
    Micros backoff = std::max<Micros>(1, static_cast<Micros>(base));
    if (policy_.deadline_us > 0 && elapsed_us + backoff >= policy_.deadline_us) {
      return std::nullopt;
    }
    ++attempts_;
    return backoff;
  }

  /// Retries consumed so far.
  int attempts() const { return attempts_; }

 private:
  const RetryPolicy policy_;
  Rng rng_;
  int attempts_ = 0;
};

}  // namespace aodb

#endif  // AODB_COMMON_RETRY_H_
