#include "common/codec.h"

namespace aodb {

void BufWriter::PutFixed32(uint32_t v) {
  char b[4];
  std::memcpy(b, &v, 4);
  buf_.append(b, 4);
}

void BufWriter::PutFixed64(uint64_t v) {
  char b[8];
  std::memcpy(b, &v, 8);
  buf_.append(b, 8);
}

void BufWriter::PutVarint(uint64_t v) {
  while (v >= 0x80) {
    buf_.push_back(static_cast<char>((v & 0x7f) | 0x80));
    v >>= 7;
  }
  buf_.push_back(static_cast<char>(v));
}

void BufWriter::PutDouble(double v) {
  uint64_t bits;
  std::memcpy(&bits, &v, 8);
  PutFixed64(bits);
}

void BufWriter::PutString(const std::string& s) {
  PutVarint(s.size());
  buf_.append(s);
}

void BufWriter::PutBytes(const void* data, size_t len) {
  buf_.append(static_cast<const char*>(data), len);
}

Status BufReader::GetU8(uint8_t* out) {
  if (remaining() < 1) return Status::Corruption("truncated u8");
  *out = static_cast<uint8_t>(data_[pos_++]);
  return Status::OK();
}

Status BufReader::GetFixed32(uint32_t* out) {
  if (remaining() < 4) return Status::Corruption("truncated fixed32");
  std::memcpy(out, data_.data() + pos_, 4);
  pos_ += 4;
  return Status::OK();
}

Status BufReader::GetFixed64(uint64_t* out) {
  if (remaining() < 8) return Status::Corruption("truncated fixed64");
  std::memcpy(out, data_.data() + pos_, 8);
  pos_ += 8;
  return Status::OK();
}

Status BufReader::GetVarint(uint64_t* out) {
  uint64_t result = 0;
  int shift = 0;
  size_t p = pos_;
  while (p < data_.size() && shift <= 63) {
    uint8_t byte = static_cast<uint8_t>(data_[p++]);
    result |= static_cast<uint64_t>(byte & 0x7f) << shift;
    if ((byte & 0x80) == 0) {
      pos_ = p;
      *out = result;
      return Status::OK();
    }
    shift += 7;
  }
  return Status::Corruption("truncated or overlong varint");
}

Status BufReader::GetSigned(int64_t* out) {
  uint64_t raw = 0;
  AODB_RETURN_NOT_OK(GetVarint(&raw));
  *out = static_cast<int64_t>((raw >> 1) ^ (~(raw & 1) + 1));
  return Status::OK();
}

Status BufReader::GetDouble(double* out) {
  uint64_t bits = 0;
  AODB_RETURN_NOT_OK(GetFixed64(&bits));
  std::memcpy(out, &bits, 8);
  return Status::OK();
}

Status BufReader::GetBool(bool* out) {
  uint8_t v = 0;
  AODB_RETURN_NOT_OK(GetU8(&v));
  *out = v != 0;
  return Status::OK();
}

Status BufReader::GetString(std::string* out) {
  uint64_t len = 0;
  AODB_RETURN_NOT_OK(GetVarint(&len));
  if (remaining() < len) return Status::Corruption("truncated string");
  out->assign(data_.data() + pos_, len);
  pos_ += len;
  return Status::OK();
}

namespace {

struct Crc32cTable {
  uint32_t t[256];
  Crc32cTable() {
    constexpr uint32_t kPoly = 0x82f63b78u;  // Castagnoli, reflected.
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t crc = i;
      for (int j = 0; j < 8; ++j) {
        crc = (crc & 1) ? (crc >> 1) ^ kPoly : crc >> 1;
      }
      t[i] = crc;
    }
  }
};

}  // namespace

uint32_t Crc32c(const void* data, size_t len) {
  static const Crc32cTable table;
  const uint8_t* p = static_cast<const uint8_t*>(data);
  uint32_t crc = 0xffffffffu;
  for (size_t i = 0; i < len; ++i) {
    crc = table.t[(crc ^ p[i]) & 0xff] ^ (crc >> 8);
  }
  return crc ^ 0xffffffffu;
}

uint32_t Crc32c(const std::string& s) { return Crc32c(s.data(), s.size()); }

}  // namespace aodb
