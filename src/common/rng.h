// Deterministic random number generation for workloads and simulation.
// SplitMix64 core (fast, well distributed, trivially seedable) plus the
// distributions the load generator and network model need.

#ifndef AODB_COMMON_RNG_H_
#define AODB_COMMON_RNG_H_

#include <cmath>
#include <cstdint>

namespace aodb {

/// Deterministic 64-bit PRNG (SplitMix64). Not thread-safe; use one per
/// thread or per simulated entity.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL) : state_(seed) {}

  /// Next raw 64-bit value.
  uint64_t NextU64() {
    uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  /// Uniform in [0, n). Precondition: n > 0.
  uint64_t NextBelow(uint64_t n) { return NextU64() % n; }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double Uniform(double lo, double hi) {
    return lo + (hi - lo) * NextDouble();
  }

  /// Exponential with the given mean (> 0).
  double Exponential(double mean) {
    double u = NextDouble();
    if (u >= 1.0) u = 0.9999999999999999;
    return -mean * std::log(1.0 - u);
  }

  /// Standard normal via Box-Muller.
  double Normal(double mean = 0.0, double stddev = 1.0) {
    double u1 = NextDouble();
    double u2 = NextDouble();
    if (u1 <= 0.0) u1 = 1e-300;
    double z = std::sqrt(-2.0 * std::log(u1)) *
               std::cos(2.0 * 3.14159265358979323846 * u2);
    return mean + stddev * z;
  }

  /// Lognormal parameterized by the mean and sigma of the underlying normal.
  /// Used for cloud-storage latency modeling.
  double LogNormal(double mu, double sigma) {
    return std::exp(Normal(mu, sigma));
  }

  /// True with probability p.
  bool Bernoulli(double p) { return NextDouble() < p; }

 private:
  uint64_t state_;
};

}  // namespace aodb

#endif  // AODB_COMMON_RNG_H_
