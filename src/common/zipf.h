// Zipfian integer generator (YCSB-style): draws from {0, ..., n-1} with
// P(k) proportional to 1/(k+1)^theta. Used by the scale benchmarks to model
// skewed actor popularity — theta = 0.99 is the YCSB default and the
// conventional "heavy skew" setting in storage/actor-runtime evaluations.
//
// Construction is O(n) (one zeta-sum pass); each Next() is O(1) using the
// Gray et al. quick-zipf rejection-free transform ("Quickly generating
// billion-record synthetic databases", SIGMOD '94).

#ifndef AODB_COMMON_ZIPF_H_
#define AODB_COMMON_ZIPF_H_

#include <cmath>
#include <cstdint>

#include "common/rng.h"

namespace aodb {

class ZipfGenerator {
 public:
  ZipfGenerator(uint64_t n, double theta = 0.99)
      : n_(n), theta_(theta), zeta_(Zeta(n, theta)) {
    alpha_ = 1.0 / (1.0 - theta_);
    double zeta2 = Zeta(2, theta_);
    eta_ = (1.0 - std::pow(2.0 / static_cast<double>(n_), 1.0 - theta_)) /
           (1.0 - zeta2 / zeta_);
  }

  uint64_t n() const { return n_; }

  /// Draws one rank in [0, n): rank 0 is the most popular item.
  uint64_t Next(Rng* rng) {
    double u = rng->NextDouble();
    double uz = u * zeta_;
    if (uz < 1.0) return 0;
    if (uz < 1.0 + std::pow(0.5, theta_)) return 1;
    auto k = static_cast<uint64_t>(
        static_cast<double>(n_) * std::pow(eta_ * u - eta_ + 1.0, alpha_));
    return k >= n_ ? n_ - 1 : k;
  }

 private:
  static double Zeta(uint64_t n, double theta) {
    double sum = 0.0;
    for (uint64_t i = 1; i <= n; ++i) {
      sum += 1.0 / std::pow(static_cast<double>(i), theta);
    }
    return sum;
  }

  const uint64_t n_;
  const double theta_;
  const double zeta_;
  double alpha_ = 0.0;
  double eta_ = 0.0;
};

}  // namespace aodb

#endif  // AODB_COMMON_ZIPF_H_
