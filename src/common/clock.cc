#include "common/clock.h"

#include <chrono>

namespace aodb {

Micros RealClock::Now() const {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

RealClock* RealClock::Instance() {
  static RealClock clock;
  return &clock;
}

}  // namespace aodb
