#include "common/json.h"

#include <cctype>
#include <cstdlib>
#include <cstring>

namespace aodb {

void JsonReader::Ws() {
  while (p_ != end_ && std::isspace(static_cast<unsigned char>(*p_))) ++p_;
}

bool JsonReader::AtEnd() {
  Ws();
  return p_ == end_;
}

bool JsonReader::Consume(char c) {
  Ws();
  if (p_ == end_ || *p_ != c) return false;
  ++p_;
  return true;
}

bool JsonReader::Peek(char c) {
  Ws();
  return p_ != end_ && *p_ == c;
}

bool JsonReader::ReadString(std::string* out) {
  Ws();
  if (p_ == end_ || *p_ != '"') return false;
  ++p_;
  out->clear();
  while (p_ != end_ && *p_ != '"') {
    if (*p_ != '\\') {
      out->push_back(*p_++);
      continue;
    }
    ++p_;  // Past the backslash.
    if (p_ == end_) return false;
    char c = *p_++;
    switch (c) {
      case '"': out->push_back('"'); break;
      case '\\': out->push_back('\\'); break;
      case '/': out->push_back('/'); break;
      case 'b': out->push_back('\b'); break;
      case 'f': out->push_back('\f'); break;
      case 'n': out->push_back('\n'); break;
      case 'r': out->push_back('\r'); break;
      case 't': out->push_back('\t'); break;
      case 'u': {
        if (end_ - p_ < 4) return false;
        unsigned code = 0;
        for (int i = 0; i < 4; ++i) {
          char h = *p_++;
          code <<= 4;
          if (h >= '0' && h <= '9') {
            code |= static_cast<unsigned>(h - '0');
          } else if (h >= 'a' && h <= 'f') {
            code |= static_cast<unsigned>(h - 'a' + 10);
          } else if (h >= 'A' && h <= 'F') {
            code |= static_cast<unsigned>(h - 'A' + 10);
          } else {
            return false;
          }
        }
        if (code < 0x80) {
          out->push_back(static_cast<char>(code));
        } else if (code < 0x800) {
          out->push_back(static_cast<char>(0xC0 | (code >> 6)));
          out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
        } else {
          out->push_back(static_cast<char>(0xE0 | (code >> 12)));
          out->push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
          out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
        }
        break;
      }
      default:
        return false;
    }
  }
  if (p_ == end_) return false;
  ++p_;  // Closing quote.
  return true;
}

bool JsonReader::ReadDouble(double* out) {
  Ws();
  const char* start = p_;
  while (p_ != end_ &&
         (std::isdigit(static_cast<unsigned char>(*p_)) || *p_ == '-' ||
          *p_ == '+' || *p_ == '.' || *p_ == 'e' || *p_ == 'E')) {
    ++p_;
  }
  if (p_ == start) return false;
  *out = std::strtod(std::string(start, p_).c_str(), nullptr);
  return true;
}

bool JsonReader::ReadI64(int64_t* out) {
  Ws();
  const char* start = p_;
  while (p_ != end_ &&
         (std::isdigit(static_cast<unsigned char>(*p_)) || *p_ == '-')) {
    ++p_;
  }
  if (p_ == start) return false;
  // strtoull covers the full uint64 seed range via wraparound.
  *out = static_cast<int64_t>(
      std::strtoull(std::string(start, p_).c_str(), nullptr, 10));
  if (start[0] == '-') {
    *out = std::strtoll(std::string(start, p_).c_str(), nullptr, 10);
  }
  return true;
}

bool JsonReader::ReadBool(bool* out) {
  Ws();
  if (end_ - p_ >= 4 && std::strncmp(p_, "true", 4) == 0) {
    p_ += 4;
    *out = true;
    return true;
  }
  if (end_ - p_ >= 5 && std::strncmp(p_, "false", 5) == 0) {
    p_ += 5;
    *out = false;
    return true;
  }
  return false;
}

bool JsonReader::ReadNull() {
  Ws();
  if (end_ - p_ >= 4 && std::strncmp(p_, "null", 4) == 0) {
    p_ += 4;
    return true;
  }
  return false;
}

bool JsonReader::SkipValue() {
  Ws();
  if (p_ == end_) return false;
  if (*p_ == '"') {
    std::string ignored;
    return ReadString(&ignored);
  }
  if (*p_ == '{' || *p_ == '[') {
    const char open = *p_;
    const char close = open == '{' ? '}' : ']';
    ++p_;
    int depth = 1;
    bool in_string = false;
    while (p_ != end_ && depth > 0) {
      if (in_string) {
        if (*p_ == '\\') {
          ++p_;
          if (p_ == end_) break;
        } else if (*p_ == '"') {
          in_string = false;
        }
      } else if (*p_ == '"') {
        in_string = true;
      } else if (*p_ == open) {
        ++depth;
      } else if (*p_ == close) {
        --depth;
      }
      ++p_;
    }
    return depth == 0;
  }
  bool b;
  if (*p_ == 't' || *p_ == 'f') return ReadBool(&b);
  if (*p_ == 'n') return ReadNull();
  double d;
  return ReadDouble(&d);
}

bool ReadObject(JsonReader* r,
                const std::function<bool(const std::string&)>& field) {
  if (!r->Consume('{')) return false;
  if (r->Consume('}')) return true;
  do {
    std::string key;
    if (!r->ReadString(&key) || !r->Consume(':')) return false;
    if (!field(key)) return false;
  } while (r->Consume(','));
  return r->Consume('}');
}

namespace {

bool ValidateValue(JsonReader* r, int depth) {
  if (depth > 64) return false;
  if (r->Peek('{')) {
    return ReadObject(
        r, [&](const std::string&) { return ValidateValue(r, depth + 1); });
  }
  if (r->Peek('[')) {
    return ReadArray(r, [&] { return ValidateValue(r, depth + 1); });
  }
  if (r->Peek('"')) {
    std::string s;
    return r->ReadString(&s);
  }
  bool b;
  if (r->ReadBool(&b)) return true;
  if (r->ReadNull()) return true;
  double d;
  return r->ReadDouble(&d);
}

}  // namespace

bool ValidateJson(const std::string& text) {
  JsonReader r(text);
  return ValidateValue(&r, 0) && r.AtEnd();
}

}  // namespace aodb
