#!/usr/bin/env bash
# Scheduling hot-path benchmark snapshot: runs the real-mode micro-runtime
# benches (throughput, end-to-end drain, call round trip — with the
# executor's steal/park counters), the fig6 single-server sweep, and the
# flash-crowd overload bench (skewed load vs bounded mailboxes + hot-actor
# migration), then assembles BENCH_runtime.json for before/after comparison
# across commits.
#
# Usage: scripts/bench_compare.sh [output.json]   (default: BENCH_runtime.json)
set -euo pipefail
cd "$(dirname "$0")/.."

out="${1:-BENCH_runtime.json}"
tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT

# Refuse to overwrite a snapshot taken on different hardware: wall-clock
# numbers are not comparable across core counts, and a silently re-baselined
# file makes every later before/after diff a lie. Re-baseline deliberately
# with BENCH_ALLOW_HOST_MISMATCH=1.
if [[ -f "$out" && "${BENCH_ALLOW_HOST_MISMATCH:-0}" != 1 ]]; then
  prev_cores="$(python3 -c \
    'import json,sys; print(json.load(open(sys.argv[1])).get("host_cores",""))' \
    "$out" 2>/dev/null || true)"
  cur_cores="$(python3 -c 'import os; print(os.cpu_count())')"
  if [[ -n "$prev_cores" && "$prev_cores" != "$cur_cores" ]]; then
    echo "bench_compare: REFUSING to overwrite $out:" >&2
    echo "bench_compare:   last snapshot ran on $prev_cores cores; this host has $cur_cores." >&2
    echo "bench_compare:   Cross-hardware numbers are not comparable. Set" >&2
    echo "bench_compare:   BENCH_ALLOW_HOST_MISMATCH=1 to re-baseline anyway." >&2
    exit 1
  fi
fi

cmake -B build -S . >/dev/null
cmake --build build -j --target micro_runtime fig6_single_server \
  flash_crowd >/dev/null

echo "bench_compare: running micro_runtime (real-mode filter)..."
build/bench/micro_runtime \
  --benchmark_filter='RealMode' \
  --benchmark_min_time=1.0 \
  --benchmark_format=json >"$tmp/micro.json"

echo "bench_compare: running fig6_single_server (AODB_BENCH_SECONDS=5)..."
AODB_BENCH_SECONDS=5 build/bench/fig6_single_server >"$tmp/fig6.txt"

echo "bench_compare: running flash_crowd (AODB_BENCH_SECONDS=5)..."
AODB_BENCH_SECONDS=5 build/bench/flash_crowd \
  --metrics-json="$tmp/flash_metrics.json" >"$tmp/flash.txt"

python3 - "$tmp/micro.json" "$tmp/fig6.txt" "$tmp/flash.txt" "$out" <<'EOF'
import json, re, subprocess, sys

micro_path, fig6_path, flash_path, out_path = sys.argv[1:5]

with open(micro_path) as f:
    micro_raw = json.load(f)

micro = []
for b in micro_raw.get("benchmarks", []):
    entry = {
        "name": b["name"],
        "real_time_ns": b.get("real_time"),
        "cpu_time_ns": b.get("cpu_time"),
    }
    if "items_per_second" in b:
        entry["items_per_second"] = b["items_per_second"]
    for counter in ("steals", "parks", "tasks_run"):
        if counter in b:
            entry[counter] = b[counter]
    micro.append(entry)

# fig6 table rows: sensors  achieved  stddev  util%  lat_mean  lat_p50  lat_p99
fig6 = []
row = re.compile(
    r"^\s*(\d+)\s+([\d.]+)\s+([\d.]+)\s+([\d.]+)\s+([\d.]+)\s+([\d.]+)\s+([\d.]+)\s*$")
with open(fig6_path) as f:
    for line in f:
        m = row.match(line)
        if m:
            fig6.append({
                "sensors": int(m.group(1)),
                "achieved_rps": float(m.group(2)),
                "util_pct": float(m.group(4)),
                "lat_p50_ms": float(m.group(6)),
                "lat_p99_ms": float(m.group(7)),
            })

# flash_crowd table rows: phase  offered acked failed retries p50 p99
#                          migr mbox_rej shed conserved
flash = []
flash_row = re.compile(
    r"^\s*(uniform, managed|skewed, unmanaged|skewed, managed)\s+"
    r"(\d+)\s+(\d+)\s+(\d+)\s+(\d+)\s+([\d.]+)\s+([\d.]+)\s+"
    r"(\d+)\s+(\d+)\s+(\d+)\s+(yes|NO)\s*$")
with open(flash_path) as f:
    for line in f:
        m = flash_row.match(line)
        if m:
            flash.append({
                "phase": m.group(1),
                "offered": int(m.group(2)),
                "acked": int(m.group(3)),
                "failed": int(m.group(4)),
                "retries": int(m.group(5)),
                "lat_p50_ms": float(m.group(6)),
                "lat_p99_ms": float(m.group(7)),
                "migrations": int(m.group(8)),
                "mailbox_rejects": int(m.group(9)),
                "shed": int(m.group(10)),
                "conserved": m.group(11) == "yes",
            })

def flash_p99(phase):
    for r in flash:
        if r["phase"] == phase:
            return r["lat_p99_ms"]
    return 0.0

def git(*args):
    try:
        return subprocess.check_output(("git",) + args, text=True).strip()
    except Exception:
        return ""

def micro_time(name):
    for m in micro:
        if m["name"] == name:
            return m.get("real_time_ns") or 0.0
    return 0.0

# Flight-recorder hot-path overhead: headline TellDrain with the recorder
# on (the production default) vs the recorder-off control. Target <= 0.02.
drain_on = micro_time("BM_RealModeTellDrain/8/16/real_time")
drain_off = micro_time("BM_RealModeTellDrainNoRecorder/8/16/real_time")

snapshot = {
    "commit": git("rev-parse", "--short", "HEAD"),
    "date": git("show", "-s", "--format=%cI", "HEAD"),
    "host_cores": __import__("os").cpu_count(),
    "micro_runtime": micro,
    "fig6_single_server": fig6,
    "fig6_peak_rps": max((r["achieved_rps"] for r in fig6), default=0.0),
    "flash_crowd": flash,
    # The overload acceptance ratio: skewed-managed p99 over the uniform
    # baseline p99 (target: <= 2.0).
    "flash_crowd_p99_ratio": (
        round(flash_p99("skewed, managed") / flash_p99("uniform, managed"), 3)
        if flash_p99("uniform, managed") > 0 else 0.0),
    # Fractional slowdown of the headline drain bench with the recorder on.
    "flight_recorder_overhead": (
        round(drain_on / drain_off - 1.0, 4) if drain_off > 0 else 0.0),
}
with open(out_path, "w") as f:
    json.dump(snapshot, f, indent=2)
    f.write("\n")
print(f"bench_compare: wrote {out_path}")
EOF
