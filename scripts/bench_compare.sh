#!/usr/bin/env bash
# Scheduling hot-path benchmark snapshot: runs the real-mode micro-runtime
# benches (throughput, end-to-end drain, call round trip — with the
# executor's steal/park counters), the fig6 single-server sweep, and the
# flash-crowd overload bench (skewed load vs bounded mailboxes + hot-actor
# migration), then assembles BENCH_runtime.json for before/after comparison
# across commits.
#
# Usage: scripts/bench_compare.sh [output.json]   (default: BENCH_runtime.json)
set -euo pipefail
cd "$(dirname "$0")/.."

out="${1:-BENCH_runtime.json}"
tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT

# Refuse to overwrite a snapshot taken on different hardware: wall-clock
# numbers are not comparable across core counts, and a silently re-baselined
# file makes every later before/after diff a lie. Re-baseline deliberately
# with BENCH_ALLOW_HOST_MISMATCH=1.
if [[ -f "$out" && "${BENCH_ALLOW_HOST_MISMATCH:-0}" != 1 ]]; then
  prev_cores="$(python3 -c \
    'import json,sys; print(json.load(open(sys.argv[1])).get("host_cores",""))' \
    "$out" 2>/dev/null || true)"
  cur_cores="$(python3 -c 'import os; print(os.cpu_count())')"
  if [[ -n "$prev_cores" && "$prev_cores" != "$cur_cores" ]]; then
    echo "bench_compare: REFUSING to overwrite $out:" >&2
    echo "bench_compare:   last snapshot ran on $prev_cores cores; this host has $cur_cores." >&2
    echo "bench_compare:   Cross-hardware numbers are not comparable. Set" >&2
    echo "bench_compare:   BENCH_ALLOW_HOST_MISMATCH=1 to re-baseline anyway." >&2
    exit 1
  fi
fi

cmake -B build -S . >/dev/null
cmake --build build -j --target micro_runtime fig6_single_server \
  flash_crowd micro_scale >/dev/null

echo "bench_compare: running micro_runtime (real-mode filter)..."
build/bench/micro_runtime \
  --benchmark_filter='RealMode' \
  --benchmark_min_time=1.0 \
  --benchmark_format=json >"$tmp/micro.json"

echo "bench_compare: running fig6_single_server (AODB_BENCH_SECONDS=5)..."
AODB_BENCH_SECONDS=5 build/bench/fig6_single_server >"$tmp/fig6.txt"

echo "bench_compare: running flash_crowd (AODB_BENCH_SECONDS=5)..."
AODB_BENCH_SECONDS=5 build/bench/flash_crowd \
  --metrics-json="$tmp/flash_metrics.json" >"$tmp/flash.txt"

# Million-actor scale snapshot, two cluster legs:
#  1. resident-path sweep (cold tail off): the flat-cost acceptance ratio —
#     per-message cost growth as the REGISTERED population grows 1000x with
#     a fixed hot working set. A cold-miss tail would fold real fault work
#     (storage loads) into the ratio and measure the workload, not the
#     structure.
#  2. fault leg (1M row only, 1% uniform cold tail): exercises the paging
#     path at scale and snapshots the activation-fault count + queue-wait
#     p99. AODB_SCALE_* env overrides pass through to both legs
#     (e.g. AODB_SCALE_ACTORS=100000 for a quick local run).
echo "bench_compare: running micro_scale (cluster mode, resident-path sweep)..."
AODB_SCALE_TAIL_PER_MILLE=0 build/bench/micro_scale >"$tmp/scale_cluster.txt"

echo "bench_compare: running micro_scale (cluster mode, 1M fault leg)..."
AODB_SCALE_MIN_ACTORS="${AODB_SCALE_ACTORS:-1000000}" \
  AODB_SCALE_REPEATS=1 AODB_SCALE_MESSAGES=800000 \
  build/bench/micro_scale >"$tmp/scale_fault.txt"

echo "bench_compare: running micro_scale (--mode=directory stripe sweep)..."
build/bench/micro_scale --mode=directory >"$tmp/scale_dir.txt"

python3 - "$tmp/micro.json" "$tmp/fig6.txt" "$tmp/flash.txt" \
  "$tmp/scale_cluster.txt" "$tmp/scale_fault.txt" "$tmp/scale_dir.txt" \
  "$out" <<'EOF'
import json, re, subprocess, sys

(micro_path, fig6_path, flash_path, scale_cluster_path, scale_fault_path,
 scale_dir_path, out_path) = sys.argv[1:8]

with open(micro_path) as f:
    micro_raw = json.load(f)

micro = []
for b in micro_raw.get("benchmarks", []):
    entry = {
        "name": b["name"],
        "real_time_ns": b.get("real_time"),
        "cpu_time_ns": b.get("cpu_time"),
    }
    if "items_per_second" in b:
        entry["items_per_second"] = b["items_per_second"]
    for counter in ("steals", "parks", "tasks_run"):
        if counter in b:
            entry[counter] = b[counter]
    micro.append(entry)

# fig6 table rows: sensors  achieved  stddev  util%  lat_mean  lat_p50  lat_p99
fig6 = []
row = re.compile(
    r"^\s*(\d+)\s+([\d.]+)\s+([\d.]+)\s+([\d.]+)\s+([\d.]+)\s+([\d.]+)\s+([\d.]+)\s*$")
with open(fig6_path) as f:
    for line in f:
        m = row.match(line)
        if m:
            fig6.append({
                "sensors": int(m.group(1)),
                "achieved_rps": float(m.group(2)),
                "util_pct": float(m.group(4)),
                "lat_p50_ms": float(m.group(6)),
                "lat_p99_ms": float(m.group(7)),
            })

# flash_crowd table rows: phase  offered acked failed retries p50 p99
#                          migr mbox_rej shed conserved
flash = []
flash_row = re.compile(
    r"^\s*(uniform, managed|skewed, unmanaged|skewed, managed)\s+"
    r"(\d+)\s+(\d+)\s+(\d+)\s+(\d+)\s+([\d.]+)\s+([\d.]+)\s+"
    r"(\d+)\s+(\d+)\s+(\d+)\s+(yes|NO)\s*$")
with open(flash_path) as f:
    for line in f:
        m = flash_row.match(line)
        if m:
            flash.append({
                "phase": m.group(1),
                "offered": int(m.group(2)),
                "acked": int(m.group(3)),
                "failed": int(m.group(4)),
                "retries": int(m.group(5)),
                "lat_p50_ms": float(m.group(6)),
                "lat_p99_ms": float(m.group(7)),
                "migrations": int(m.group(8)),
                "mailbox_rejects": int(m.group(9)),
                "shed": int(m.group(10)),
                "conserved": m.group(11) == "yes",
            })

# micro_scale cluster rows: registered messages msgs_per_sec ns_per_msg
#                           ratio_vs_1k faults paged_out fault_p99_us dir_entries
scale_row = re.compile(
    r"^\s*(\d+)\s+(\d+)\s+([\d.]+)\s+([\d.]+)\s+([\d.]+)\s+"
    r"(\d+)\s+(\d+)\s+(\d+)\s+(\d+)\s*$")

def parse_scale(path):
    rows = []
    with open(path) as f:
        for line in f:
            m = scale_row.match(line)
            if m:
                rows.append({
                    "registered": int(m.group(1)),
                    "msgs_per_sec": float(m.group(3)),
                    "ns_per_msg": float(m.group(4)),
                    "ratio_vs_1k": float(m.group(5)),
                    "faults": int(m.group(6)),
                    "paged_out": int(m.group(7)),
                    "fault_p99_us": int(m.group(8)),
                    "directory_entries": int(m.group(9)),
                })
    return rows

scale = parse_scale(scale_cluster_path)
scale_fault = parse_scale(scale_fault_path)

# micro_scale directory rows:
#   shards threads mops_per_sec speedup_vs_1 contended_per_kop
shard_sweep = []
shard_row = re.compile(
    r"^\s*(\d+)\s+(\d+)\s+([\d.]+)\s+([\d.]+)\s+([\d.]+)\s*$")
with open(scale_dir_path) as f:
    for line in f:
        m = shard_row.match(line)
        if m:
            shard_sweep.append({
                "shards": int(m.group(1)),
                "mops_per_sec": float(m.group(3)),
                "speedup_vs_1": float(m.group(4)),
                "contended_per_kop": float(m.group(5)),
            })

def shard_speedup(n):
    for r in shard_sweep:
        if r["shards"] == n:
            return r["speedup_vs_1"]
    return 0.0

def flash_p99(phase):
    for r in flash:
        if r["phase"] == phase:
            return r["lat_p99_ms"]
    return 0.0

def git(*args):
    try:
        return subprocess.check_output(("git",) + args, text=True).strip()
    except Exception:
        return ""

def micro_time(name):
    for m in micro:
        if m["name"] == name:
            return m.get("real_time_ns") or 0.0
    return 0.0

# Flight-recorder hot-path overhead: headline TellDrain with the recorder
# on (the production default) vs the recorder-off control. Target <= 0.02.
drain_on = micro_time("BM_RealModeTellDrain/8/16/real_time")
drain_off = micro_time("BM_RealModeTellDrainNoRecorder/8/16/real_time")

snapshot = {
    "commit": git("rev-parse", "--short", "HEAD"),
    "date": git("show", "-s", "--format=%cI", "HEAD"),
    "host_cores": __import__("os").cpu_count(),
    "micro_runtime": micro,
    "fig6_single_server": fig6,
    "fig6_peak_rps": max((r["achieved_rps"] for r in fig6), default=0.0),
    "flash_crowd": flash,
    # The overload acceptance ratio: skewed-managed p99 over the uniform
    # baseline p99 (target: <= 2.0).
    "flash_crowd_p99_ratio": (
        round(flash_p99("skewed, managed") / flash_p99("uniform, managed"), 3)
        if flash_p99("uniform, managed") > 0 else 0.0),
    # Fractional slowdown of the headline drain bench with the recorder on.
    "flight_recorder_overhead": (
        round(drain_on / drain_off - 1.0, 4) if drain_off > 0 else 0.0),
    # Million-actor scale, resident path: per-message cost vs registered
    # count under a working-set cap, cold tail off (acceptance: largest
    # row's ratio_vs_1k <= 1.2).
    "micro_scale": scale,
    "micro_scale_cost_ratio": (
        scale[-1]["ratio_vs_1k"] if scale else 0.0),
    # Fault leg: the largest row re-run with the 1% uniform cold tail, so
    # the activation-fault path (paged entry -> storage load -> turn) is
    # exercised and its enqueue->first-turn p99 tracked.
    "micro_scale_fault": scale_fault,
    "activation_fault_count": (
        scale_fault[-1]["faults"] if scale_fault else 0),
    "activation_fault_p99_us": (
        scale_fault[-1]["fault_p99_us"] if scale_fault else 0),
    # Raw directory throughput vs stripe count; the tracked lock-striping
    # win (acceptance: >= 2.0 at 8 stripes vs 1).
    "directory_shard_sweep": shard_sweep,
    "directory_shard_speedup_8v1": shard_speedup(8),
}
with open(out_path, "w") as f:
    json.dump(snapshot, f, indent=2)
    f.write("\n")
print(f"bench_compare: wrote {out_path}")
EOF
