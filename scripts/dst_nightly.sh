#!/usr/bin/env bash
# Extended deterministic chaos sweep — the long-running version of the
# tier-1 dst leg. Explores a much larger seed range through the chaos
# explorer (tests/dst_explore.cc), checking every run against the cluster
# invariants: exactly-one-live-activation, durable-ack write conservation,
# monotonic oracle reads, and zero leaked promises at shutdown.
#
# A violating seed leaves three artifacts under the artifact directory:
#   seed-<N>.json         the full fault schedule (replayable, bit-identical)
#   seed-<N>.min.json     the ddmin-minimized schedule for the same violation
#   seed-<N>.bundle.json  the postmortem bundle from the violating run:
#                         merged flight events, metrics timeline, sampled
#                         spans, membership view, per-silo hot actors
# Reproduce a schedule with:  ./build/tests/dst_explore --replay=<artifact>
# (replay re-writes the bundle next to the artifact, bit-identical)
#
# Usage: scripts/dst_nightly.sh [seeds] [base-seed]
#   seeds       number of seeds to sweep (default 5000)
#   base-seed   first seed; shift this to explore fresh schedules nightly,
#               e.g. scripts/dst_nightly.sh 5000 "$(date +%Y%m%d)"
set -euo pipefail
cd "$(dirname "$0")/.."

SEEDS="${1:-5000}"
BASE_SEED="${2:-1}"
ARTIFACT_DIR="${DST_ARTIFACT_DIR:-build/dst_artifacts}"

cmake -B build -S . >/dev/null
cmake --build build -j --target dst_explore

echo "dst_nightly: sweeping $SEEDS seeds from base $BASE_SEED"
./build/tests/dst_explore --seeds="$SEEDS" --base-seed="$BASE_SEED" \
  --artifact-dir="$ARTIFACT_DIR"
echo "dst_nightly: clean ($SEEDS seeds, no invariant violations)"
