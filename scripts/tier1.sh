#!/usr/bin/env bash
# Tier-1 verification: the plain Release build + full test suite, then the
# sanitized (ASan+UBSan) build running the concurrency / fault-injection
# subset, then the TSan build running the real-thread-pool membership and
# fault tests. Mirrors ROADMAP.md's tier-1 command and adds the sanitizer
# legs.
#
# Each leg's test list is declared ONCE below and drives both the build
# targets and the ctest selection, so a list entry cannot silently rot: a
# listed binary that the build did not produce fails the leg.
#
# The dst leg then sweeps seeded fault schedules through the deterministic
# chaos explorer (tests/dst_explore.cc): every seed runs the full cluster
# invariant suite (single-activation, write conservation, monotonic reads,
# promise leaks); a violating seed leaves a JSON replay artifact plus a
# ddmin-minimized schedule and fails the leg. scripts/dst_nightly.sh runs
# the long version of the same sweep.
#
# Usage: scripts/tier1.sh [--no-asan] [--no-tsan] [--no-dst]
set -euo pipefail
cd "$(dirname "$0")/.."

# Seeds for the tier-1 dst sweep: enough to re-find every historical
# invariant bug class in a few minutes, small enough for the time box.
DST_SEEDS="${DST_SEEDS:-200}"

# Sanitized leg: the tests that exercise cross-thread and fault paths.
ASAN_TESTS=(
  fault_injection_test aodb_features_test storage_test
  real_mode_stress_test wire_registry_test membership_test
  telemetry_test scheduler_test overload_test observability_test
  scale_paging_test
)
# TSan leg: data races in the membership agents, eviction/failover paths,
# real-mode thread pools, the concurrent telemetry recorders, the flight
# recorder, and the overload/migration machinery (ASan and TSan cannot
# share a build).
TSAN_TESTS=(
  membership_test fault_injection_test real_mode_stress_test
  telemetry_test scheduler_test overload_test observability_test
  scale_paging_test
)

# Joins a test list into the anchored regex ctest -R expects.
ctest_regex() {
  local IFS='|'
  echo "$*"
}

# Fails the leg when a listed binary is missing from the build tree — the
# guard against a test being dropped from a leg without anyone noticing.
require_binaries() {
  local dir="$1"; shift
  local missing=0
  for t in "$@"; do
    if [[ ! -x "$dir/tests/$t" ]]; then
      echo "tier1: ERROR: expected test binary $dir/tests/$t is missing" >&2
      missing=1
    fi
  done
  return "$missing"
}

run_asan=1
run_tsan=1
run_dst=1
for arg in "$@"; do
  case "$arg" in
    --no-asan) run_asan=0 ;;
    --no-tsan) run_tsan=0 ;;
    --no-dst) run_dst=0 ;;
  esac
done

cmake -B build -S . >/dev/null
cmake --build build -j
ctest --test-dir build --output-on-failure -j "$(nproc)"

if [[ "$run_dst" == 1 ]]; then
  # Deterministic chaos sweep. Nonzero exit means an invariant violation
  # (artifact paths are printed by the driver) or a broken harness.
  if ! ./build/tests/dst_explore --seeds="$DST_SEEDS" \
      --artifact-dir=build/dst_artifacts; then
    echo "tier1: ERROR: dst sweep failed; replay artifacts (if any) are" >&2
    echo "tier1:   under build/dst_artifacts/ — rerun a schedule with" >&2
    echo "tier1:   ./build/tests/dst_explore --replay=<artifact.json>" >&2
    exit 1
  fi
  # Bundle sanity: force a synthetic invariant violation (the checker
  # self-test) and assert the postmortem bundle is written, parses as JSON,
  # and contains the violating actor's lifecycle transitions.
  bundle_dir=build/dst_bundle_sanity
  rm -rf "$bundle_dir"
  if ./build/tests/dst_explore --force-violation --seeds=1 --no-shrink \
      --artifact-dir="$bundle_dir" >/dev/null; then
    echo "tier1: ERROR: --force-violation run reported no violation" >&2
    exit 1
  fi
  python3 - "$bundle_dir/seed-1.bundle.json" <<'EOF'
import json, sys
path = sys.argv[1]
with open(path) as f:
    bundle = json.load(f)
assert bundle["schema"] == "aodb.postmortem.v1", bundle.get("schema")
assert "forced: synthetic" in bundle["reason"], bundle["reason"]
events = bundle["flight_events"]
kinds = {e["type"] for e in events if e["actor"] == "dst.Seq/s0"}
assert "activate" in kinds, f"no activate for dst.Seq/s0: {sorted(kinds)}"
assert "deactivate" in kinds, f"no deactivate for dst.Seq/s0: {sorted(kinds)}"
assert isinstance(bundle["metrics_timeline"], list)
assert isinstance(bundle["membership"], list) and bundle["membership"]
assert isinstance(bundle["hot_actors"], list)
print(f"tier1: bundle sanity OK ({len(events)} flight events; "
      f"violating-actor kinds: {sorted(kinds)})")
EOF
else
  echo "tier1: skipping dst sweep (--no-dst)"
fi

if [[ "$run_asan" == 1 ]]; then
  cmake -B build-asan -S . -DAODB_SANITIZE=ON \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo >/dev/null
  cmake --build build-asan -j --target "${ASAN_TESTS[@]}"
  require_binaries build-asan "${ASAN_TESTS[@]}"
  ctest --test-dir build-asan --output-on-failure -j "$(nproc)" \
    -R "$(ctest_regex "${ASAN_TESTS[@]}")"
else
  echo "tier1: skipping ASan leg (--no-asan)"
fi

if [[ "$run_tsan" == 1 ]]; then
  cmake -B build-tsan -S . -DAODB_SANITIZE=thread \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo >/dev/null
  cmake --build build-tsan -j --target "${TSAN_TESTS[@]}"
  require_binaries build-tsan "${TSAN_TESTS[@]}"
  ctest --test-dir build-tsan --output-on-failure -j "$(nproc)" \
    -R "$(ctest_regex "${TSAN_TESTS[@]}")"
else
  echo "tier1: skipping TSan leg (--no-tsan)"
fi

echo "tier1: all green (plain + sanitized)"
