#!/usr/bin/env bash
# Tier-1 verification: the plain Release build + full test suite, then the
# sanitized (ASan+UBSan) build running the concurrency / fault-injection
# subset. Mirrors ROADMAP.md's tier-1 command and adds the sanitizer leg.
#
# Usage: scripts/tier1.sh [--no-asan]
set -euo pipefail
cd "$(dirname "$0")/.."

cmake -B build -S . >/dev/null
cmake --build build -j
ctest --test-dir build --output-on-failure -j "$(nproc)"

if [[ "${1:-}" == "--no-asan" ]]; then
  echo "tier1: skipping sanitized leg (--no-asan)"
  exit 0
fi

# Sanitized leg: the tests that exercise cross-thread and fault paths.
cmake -B build-asan -S . -DAODB_SANITIZE=ON -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  >/dev/null
cmake --build build-asan -j --target \
  fault_injection_test aodb_features_test storage_test real_mode_stress_test \
  wire_registry_test
ctest --test-dir build-asan --output-on-failure -j "$(nproc)" \
  -R 'fault_injection_test|aodb_features_test|storage_test|real_mode_stress_test|wire_registry_test'

echo "tier1: all green (plain + sanitized)"
