#!/usr/bin/env bash
# Tier-1 verification: the plain Release build + full test suite, then the
# sanitized (ASan+UBSan) build running the concurrency / fault-injection
# subset, then the TSan build running the real-thread-pool membership and
# fault tests. Mirrors ROADMAP.md's tier-1 command and adds the sanitizer
# legs.
#
# Usage: scripts/tier1.sh [--no-asan] [--no-tsan]
set -euo pipefail
cd "$(dirname "$0")/.."

run_asan=1
run_tsan=1
for arg in "$@"; do
  case "$arg" in
    --no-asan) run_asan=0 ;;
    --no-tsan) run_tsan=0 ;;
  esac
done

cmake -B build -S . >/dev/null
cmake --build build -j
ctest --test-dir build --output-on-failure -j "$(nproc)"

if [[ "$run_asan" == 1 ]]; then
  # Sanitized leg: the tests that exercise cross-thread and fault paths.
  cmake -B build-asan -S . -DAODB_SANITIZE=ON \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo >/dev/null
  cmake --build build-asan -j --target \
    fault_injection_test aodb_features_test storage_test \
    real_mode_stress_test wire_registry_test membership_test \
    telemetry_test scheduler_test
  ctest --test-dir build-asan --output-on-failure -j "$(nproc)" \
    -R 'fault_injection_test|aodb_features_test|storage_test|real_mode_stress_test|wire_registry_test|membership_test|telemetry_test|scheduler_test'
else
  echo "tier1: skipping ASan leg (--no-asan)"
fi

if [[ "$run_tsan" == 1 ]]; then
  # TSan leg: data races in the membership agents, eviction/failover
  # paths, real-mode thread pools, and the concurrent telemetry recorders
  # (ASan and TSan cannot share a build).
  cmake -B build-tsan -S . -DAODB_SANITIZE=thread \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo >/dev/null
  cmake --build build-tsan -j --target \
    membership_test fault_injection_test real_mode_stress_test \
    telemetry_test scheduler_test
  ctest --test-dir build-tsan --output-on-failure -j "$(nproc)" \
    -R 'membership_test|fault_injection_test|real_mode_stress_test|telemetry_test|scheduler_test'
else
  echo "tier1: skipping TSan leg (--no-tsan)"
fi

echo "tier1: all green (plain + sanitized)"
