// Beef cattle tracking & tracing walkthrough (the paper's case study 2):
// the farm-to-fork life of a cow — registration, collar telemetry with
// geo-fencing, an ownership transfer run as an ACID transaction across
// three actors, slaughter, meat-cut distribution, product creation, and a
// consumer's full supply-chain trace.
//
//   $ ./build/examples/cattle_tracing

#include <cstdio>

#include "cattle/platform.h"
#include "sim/sim_harness.h"

using namespace aodb;
using namespace aodb::cattle;

namespace {

/// Runs the scheduler until the future resolves; aborts the demo on error.
template <typename T>
T Await(SimHarness& harness, Future<T> f, const char* what) {
  if (!RunUntilReady(harness, f, 120 * kMicrosPerSecond)) {
    std::fprintf(stderr, "%s timed out\n", what);
    std::exit(1);
  }
  auto r = f.Get();
  if (!r.ok()) {
    std::fprintf(stderr, "%s failed: %s\n", what, r.status().ToString().c_str());
    std::exit(1);
  }
  return std::move(r).value();
}

}  // namespace

int main() {
  RuntimeOptions options;
  options.num_silos = 3;
  options.workers_per_silo = 2;
  SimHarness harness(options);
  CattlePlatform::RegisterTypes(harness.cluster());
  CattlePlatform platform(&harness.cluster());
  auto& cluster = harness.cluster();

  // --- A calf is born at farm-jutland ---------------------------------------
  Await(harness, platform.RegisterCow("cow-1024", "farm-jutland", "Angus"),
        "register");
  std::printf("registered cow-1024 (Angus) at farm-jutland\n");

  // --- Pasture with a geo-fence; the collar reports movement ------------------
  auto cow = cluster.Ref<CowActor>("cow-1024");
  Await(harness,
        cow.Call(&CowActor::SetPasture,
                 GeoFence::Rectangle(55.00, 10.00, 55.10, 10.10)),
        "set pasture");
  for (int i = 0; i < 8; ++i) {
    // The cow wanders; the last position steps outside the fence.
    double lat = 55.05 + 0.009 * i;
    cow.Tell(&CowActor::ReportCollar,
             CollarReading{harness.Now(), GeoPoint{lat, 10.05},
                           0.4 + 0.1 * i, 38.5});
    harness.RunFor(kMicrosPerSecond);
  }
  auto alerts = Await(
      harness,
      cluster.Ref<FarmerActor>("farm-jutland").Call(&FarmerActor::DrainAlerts),
      "alerts");
  std::printf("collar: 8 readings; geofence alerts at the farm: %zu\n",
              alerts.size());
  for (const GeofenceAlert& a : alerts) {
    std::printf("  ALERT %s escaped to (%.3f, %.3f)\n", a.cow_key.c_str(),
                a.position.lat, a.position.lon);
  }

  // --- Ownership transfer as a 2PC transaction (paper §4.4) --------------------
  Status transfer = Await(
      harness,
      platform.TransferOwnershipTxn("cow-1024", "farm-jutland", "farm-fyn"),
      "transfer");
  std::printf("ownership transfer farm-jutland -> farm-fyn: %s\n",
              transfer.ToString().c_str());

  // --- Slaughter and cut derivation --------------------------------------------
  auto cuts = Await(harness,
                    platform.SlaughterAndCut("sh-odense", "cow-1024",
                                             "farm-fyn", 3),
                    "slaughter");
  std::printf("slaughtered at sh-odense; %zu meat cuts derived\n",
              cuts.size());

  // --- Distribution to a retailer -------------------------------------------------
  Status shipped = Await(
      harness,
      platform.ShipCuts("dist-dk", "shop-cph", cuts, "Odense", "Copenhagen"),
      "shipment");
  std::printf("cuts shipped via dist-dk to shop-cph: %s\n",
              shipped.ToString().c_str());

  // --- Product creation and the consumer's trace ----------------------------------
  auto product = Await(harness,
                       cluster.Ref<RetailerActor>("shop-cph")
                           .Call(&RetailerActor::CreateProduct, cuts),
                       "product");
  ProductTrace trace =
      Await(harness, platform.TraceProduct(product), "trace");
  std::printf("\nconsumer trace of %s (sold by %s):\n",
              trace.product_key.c_str(), trace.retailer_key.c_str());
  for (const CutTrace& cut : trace.cuts) {
    std::printf("  %s <- cow %s, raised by %s, slaughtered at %s\n",
                cut.cut_key.c_str(), cut.cow_key.c_str(),
                cut.farmer_key.c_str(), cut.slaughterhouse_key.c_str());
    for (const ItineraryEntry& hop : cut.itinerary) {
      std::printf("      @%-6llds %-14s %-10s %s%s%s\n",
                  static_cast<long long>(hop.ts / kMicrosPerSecond),
                  hop.holder_type.c_str(), hop.holder_key.c_str(),
                  hop.location.c_str(), hop.vehicle.empty() ? "" : " by ",
                  hop.vehicle.c_str());
    }
  }

  // The cow's full ownership history is part of the provenance.
  auto info = Await(harness,
                    cow.WithPrincipal(Principal{"sh-odense", "slaughterhouse"})
                        .Call(&CowActor::Info),
                    "cow info");
  std::printf("\ncow-1024 owner history:");
  for (const std::string& owner : info.owner_history) {
    std::printf(" %s", owner.c_str());
  }
  std::printf("\nOK\n");
  return 0;
}
