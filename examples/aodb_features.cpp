// AODB feature tour: the database capabilities layered over the actor
// runtime — secondary indexes, type-wide queries, indexed queries, and
// multi-actor transactions — on a small inventory of device actors.
//
//   $ ./build/examples/aodb_features

#include <cstdio>

#include "aodb/index.h"
#include "aodb/query.h"
#include "aodb/registry.h"
#include "aodb/txn.h"
#include "sim/sim_harness.h"

using namespace aodb;

/// A spare-part inventory slot at a maintenance depot. Stock moves between
/// depots transactionally.
class DepotActor : public TransactionalActor {
 public:
  static constexpr char kTypeName[] = "Depot";

  Status Init(std::string region, int64_t stock) {
    region_ = std::move(region);
    stock_ = stock;
    TypeRegistry::Add(ctx(), kTypeName, ctx().self().key);
    ActorIndex("depot_by_region").Insert(ctx(), region_, ctx().self().key);
    return Status::OK();
  }
  int64_t Stock() { return stock_; }
  std::string Region() { return region_; }

 protected:
  Status ValidateOp(const std::string& op, const std::string& arg) override {
    int64_t n = std::atoll(arg.c_str());
    if (op == "receive") return Status::OK();
    if (op == "ship") {
      if (stock_ - staged_out_ < n) {
        return Status::FailedPrecondition("not enough stock");
      }
      staged_out_ += n;
      return Status::OK();
    }
    return Status::InvalidArgument("unknown op " + op);
  }
  void ApplyOp(const std::string& op, const std::string& arg) override {
    int64_t n = std::atoll(arg.c_str());
    if (op == "receive") stock_ += n;
    if (op == "ship") {
      stock_ -= n;
      staged_out_ -= n;
    }
  }
  void UnstageOp(const std::string& op, const std::string& arg) override {
    if (op == "ship") staged_out_ -= std::atoll(arg.c_str());
  }

 private:
  std::string region_;
  int64_t stock_ = 0;
  int64_t staged_out_ = 0;
};

int main() {
  RuntimeOptions options;
  options.num_silos = 2;
  options.workers_per_silo = 2;
  SimHarness harness(options);
  auto& cluster = harness.cluster();
  cluster.RegisterActorType<DepotActor>();
  cluster.RegisterActorType<RegistryActor>();
  cluster.RegisterActorType<IndexActor>();

  // Create depots across regions; each registers itself in the type
  // registry and the region index on Init.
  struct Spec {
    const char* key;
    const char* region;
    int64_t stock;
  };
  const Spec kDepots[] = {
      {"depot-cph", "dk", 40}, {"depot-aarhus", "dk", 25},
      {"depot-oslo", "no", 10}, {"depot-bergen", "no", 5},
      {"depot-berlin", "de", 70},
  };
  for (const Spec& d : kDepots) {
    cluster.Ref<DepotActor>(d.key).Tell(&DepotActor::Init,
                                        std::string(d.region), d.stock);
  }
  harness.RunFor(10 * kMicrosPerSecond);

  // --- Type-wide query (registry + fan-out) -----------------------------------
  auto all_stock = QueryAll<DepotActor>(cluster, &DepotActor::Stock);
  harness.RunFor(10 * kMicrosPerSecond);
  std::vector<int64_t> stocks = all_stock.Get().value();
  int64_t total = 0;
  for (int64_t s : stocks) total += s;
  std::printf("global stock across %zu depots: %lld\n", stocks.size(),
              static_cast<long long>(total));

  // --- Indexed query ------------------------------------------------------------
  ActorIndex by_region("depot_by_region");
  auto danish = QueryByIndex<DepotActor>(cluster, by_region, "dk",
                                         &DepotActor::Stock);
  harness.RunFor(10 * kMicrosPerSecond);
  std::vector<int64_t> dk_stocks = danish.Get().value();
  int64_t dk_total = 0;
  for (int64_t s : dk_stocks) dk_total += s;
  std::printf("stock in region dk (via index): %lld across %zu depots\n",
              static_cast<long long>(dk_total), dk_stocks.size());

  // --- Filtered query -------------------------------------------------------------
  auto low = QueryWhere<DepotActor>(cluster, &DepotActor::Stock,
                                    [](const int64_t& s) { return s < 20; });
  harness.RunFor(10 * kMicrosPerSecond);
  std::printf("depots below the restock threshold: %zu\n",
              low.Get().value().size());

  // --- Multi-actor transaction ----------------------------------------------------
  // Rebalance 15 units Berlin -> Oslo atomically.
  TxnManager txn(&cluster);
  auto moved = txn.Run({
      TxnOp{DepotActor::kTypeName, "depot-berlin", "ship", "15"},
      TxnOp{DepotActor::kTypeName, "depot-oslo", "receive", "15"},
  });
  harness.RunFor(10 * kMicrosPerSecond);
  std::printf("rebalance 15 berlin->oslo: %s\n",
              moved.Get().value().ToString().c_str());

  // An impossible transfer aborts atomically.
  auto too_much = txn.Run({
      TxnOp{DepotActor::kTypeName, "depot-bergen", "ship", "500"},
      TxnOp{DepotActor::kTypeName, "depot-cph", "receive", "500"},
  });
  harness.RunFor(10 * kMicrosPerSecond);
  std::printf("overdraw attempt: %s\n",
              too_much.Get().value().ToString().c_str());

  auto oslo = cluster.Ref<DepotActor>("depot-oslo").Call(&DepotActor::Stock);
  auto berlin =
      cluster.Ref<DepotActor>("depot-berlin").Call(&DepotActor::Stock);
  auto cph = cluster.Ref<DepotActor>("depot-cph").Call(&DepotActor::Stock);
  harness.RunFor(5 * kMicrosPerSecond);
  std::printf("final stock: oslo=%lld berlin=%lld cph=%lld\n",
              static_cast<long long>(oslo.Get().value()),
              static_cast<long long>(berlin.Get().value()),
              static_cast<long long>(cph.Get().value()));
  std::printf("OK\n");
  return 0;
}
