// Quickstart: define a virtual actor, run a real (thread-pool) cluster,
// and exchange messages with it.
//
//   $ ./build/examples/quickstart
//
// Demonstrates the core API surface: ActorBase, kTypeName, Cluster
// registration, ActorRef::Call / Tell, futures, and virtual-actor
// perpetuity (actors are addressed by name and activated on demand).

#include <cstdio>

#include "actor/actor_ref.h"
#include "actor/runtime.h"

using namespace aodb;

/// A device shadow: the latest reported measurement of one IoT device.
/// Virtual actors are perfect device shadows — always addressable, living
/// in memory only while traffic flows.
class DeviceShadow : public ActorBase {
 public:
  static constexpr char kTypeName[] = "DeviceShadow";

  /// Devices report asynchronously (fire-and-forget from the gateway).
  void Report(double value) {
    last_value_ = value;
    ++reports_;
  }

  /// Dashboards read the shadow (request/response).
  double LastValue() { return last_value_; }
  int64_t Reports() { return reports_; }

  /// Actors can introspect their identity and environment.
  std::string Describe() {
    return ctx().self().ToString() + " on silo " +
           std::to_string(ctx().silo());
  }

 private:
  double last_value_ = 0;
  int64_t reports_ = 0;
};

int main() {
  // A 2-silo cluster on real thread pools (2 worker threads per silo).
  RuntimeOptions options;
  options.num_silos = 2;
  options.workers_per_silo = 2;
  RealClusterHandle handle(options);
  handle->RegisterActorType<DeviceShadow>();

  // Virtual actors need no explicit creation: referencing "thermometer-1"
  // activates it on first message.
  auto device = handle->Ref<DeviceShadow>("thermometer-1");

  // Fire-and-forget reports, like an IoT gateway would send.
  for (int i = 1; i <= 10; ++i) {
    device.Tell(&DeviceShadow::Report, 20.0 + 0.1 * i);
  }

  // Request/response: Call returns a Future.
  // (Blocking Get() is fine here — we are an external client, not an actor.)
  while (device.Call(&DeviceShadow::Reports).Get().value() < 10) {
  }
  auto value = device.Call(&DeviceShadow::LastValue).Get();
  auto where = device.Call(&DeviceShadow::Describe).Get();
  std::printf("latest value : %.1f\n", value.value());
  std::printf("activation   : %s\n", where.value().c_str());

  // A different key is a different actor with its own state.
  auto other = handle->Ref<DeviceShadow>("thermometer-2");
  std::printf("other device : %lld reports (fresh actor)\n",
              static_cast<long long>(
                  other.Call(&DeviceShadow::Reports).Get().value()));

  std::printf("activations  : %zu\n", handle->TotalActivations());
  std::printf("OK\n");
  return 0;
}
