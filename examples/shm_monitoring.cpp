// Structural health monitoring walkthrough (the paper's case study 1):
// build a small bridge-monitoring topology, ingest sensor packets, and run
// every query type the platform supports — live data, raw ranges,
// statistical aggregates, threshold alerts — then demonstrate durable
// state across deactivation.
//
//   $ ./build/examples/shm_monitoring
//
// Runs on the discrete-event simulator so the output is deterministic.

#include <cstdio>

#include "loadgen/signal.h"
#include "shm/platform.h"
#include "sim/sim_harness.h"
#include "storage/mem_kv.h"
#include "storage/state_storage.h"

using namespace aodb;
using namespace aodb::shm;

int main() {
  RuntimeOptions options;
  options.num_silos = 2;
  options.workers_per_silo = 2;
  SimHarness harness(options);

  ShmPlatform::RegisterTypes(harness.cluster());
  ShmPlatform::ApplyPaperPlacement(harness.cluster());
  // Durable grain state in an (in-memory) store.
  auto backing = std::make_shared<MemKvStore>();
  harness.cluster().RegisterStateStorage(
      "default", std::make_shared<KvStateStorage>(backing.get()));
  ShmPlatform platform(&harness.cluster());

  // One organization ("Great Belt Bridge"), 20 sensors, 2 channels each,
  // every 5th sensor with a virtual channel; alerts above 3.0.
  ShmTopology topology;
  topology.sensors = 20;
  topology.sensors_per_org = 20;
  topology.virtual_every = 5;
  topology.hour_window_us = 5 * kMicrosPerSecond;  // Compressed "hours".
  topology.day_window_us = 20 * kMicrosPerSecond;
  topology.month_window_us = 60 * kMicrosPerSecond;
  topology.enable_alerts = true;
  topology.threshold_high = 3.0;

  auto setup = platform.Setup(topology);
  harness.RunFor(30 * kMicrosPerSecond);
  if (!setup.Get().value().ok()) {
    std::fprintf(stderr, "setup failed\n");
    return 1;
  }
  std::printf("topology: %d sensors, 1 organization, %d channels\n",
              topology.sensors, topology.sensors * 2 + 4);

  // Ingest 30 seconds of signal (one packet per sensor per second).
  std::vector<SignalGenerator> signals;
  for (int s = 0; s < topology.sensors; ++s) signals.emplace_back(1000 + s);
  for (int wave = 0; wave < 30; ++wave) {
    for (int s = 0; s < topology.sensors; ++s) {
      platform.Insert(topology, s, signals[s].Packet(harness.Now(), 20, 10));
    }
    harness.RunFor(kMicrosPerSecond);
  }
  harness.RunFor(5 * kMicrosPerSecond);

  // --- Live data (requirement 7) -------------------------------------------
  auto live = platform.LiveData(topology, 0);
  harness.RunFor(5 * kMicrosPerSecond);
  std::vector<LiveDataEntry> entries = live.Get().value();
  std::printf("\nlive data: %zu channels reporting, e.g.\n", entries.size());
  for (size_t i = 0; i < 3 && i < entries.size(); ++i) {
    std::printf("  %-8s t=%lldus value=%.3f\n", entries[i].channel_key.c_str(),
                static_cast<long long>(entries[i].ts), entries[i].value);
  }

  // --- Raw range (requirement 6: interactive exploration) -------------------
  auto range = platform.RawRange(topology, 3, 0,
                                 harness.Now() - 15 * kMicrosPerSecond,
                                 harness.Now());
  harness.RunFor(2 * kMicrosPerSecond);
  std::printf("\nraw range of s3.c0 (last 15s): %zu points\n",
              range.Get().value().points.size());

  // --- Statistical aggregates (requirement 6) --------------------------------
  auto aggs = platform.HourAggregates(topology, 3, 0, 0, harness.Now());
  harness.RunFor(2 * kMicrosPerSecond);
  std::printf("\nhourly aggregates of s3.c0:\n");
  std::vector<AggregateView> agg_windows = aggs.Get().value();
  for (const AggregateView& w : agg_windows) {
    std::printf("  window@%3llds n=%-3lld mean=%6.3f min=%6.3f max=%6.3f "
                "stddev=%5.3f\n",
                static_cast<long long>(w.window_start / kMicrosPerSecond),
                static_cast<long long>(w.count), w.mean, w.min, w.max,
                w.stddev);
  }

  // --- Accumulated change (requirement 4) -------------------------------------
  auto acc = harness.cluster()
                 .Ref<PhysicalChannelActor>(ShmPlatform::ChannelKey(3, 0))
                 .Call(&PhysicalChannelActor::AccumulatedChange);
  harness.RunFor(2 * kMicrosPerSecond);
  std::printf("\naccumulated change of s3.c0: %.2f\n", acc.Get().value());

  // --- Alerts (requirement 5) ---------------------------------------------------
  auto alerts = harness.cluster()
                    .Ref<UserActor>(ShmPlatform::UserKey(0))
                    .Call(&UserActor::TotalAlerts);
  harness.RunFor(2 * kMicrosPerSecond);
  std::printf("\nthreshold alerts delivered to the org user: %lld\n",
              static_cast<long long>(alerts.Get().value()));

  // --- Durability: deactivate everything, reactivate, state is intact -----------
  auto flushed = harness.cluster().DeactivateAll();
  harness.RunFor(10 * kMicrosPerSecond);
  std::printf("\nafter DeactivateAll: %zu activations, %lld state snapshots "
              "persisted\n",
              harness.cluster().TotalActivations(),
              static_cast<long long>(backing->Count().value()));
  (void)flushed;
  auto acc2 = harness.cluster()
                  .Ref<PhysicalChannelActor>(ShmPlatform::ChannelKey(3, 0))
                  .Call(&PhysicalChannelActor::AccumulatedChange);
  harness.RunFor(5 * kMicrosPerSecond);
  std::printf("reactivated s3.c0 accumulated change: %.2f (restored)\n",
              acc2.Get().value());
  std::printf("\nOK\n");
  return 0;
}
