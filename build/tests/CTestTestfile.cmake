# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(actor_runtime_test "/root/repo/build/tests/actor_runtime_test")
set_tests_properties(actor_runtime_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;24;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(shm_platform_test "/root/repo/build/tests/shm_platform_test")
set_tests_properties(shm_platform_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;24;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(cattle_platform_test "/root/repo/build/tests/cattle_platform_test")
set_tests_properties(cattle_platform_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;24;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(aodb_features_test "/root/repo/build/tests/aodb_features_test")
set_tests_properties(aodb_features_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;24;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(storage_test "/root/repo/build/tests/storage_test")
set_tests_properties(storage_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;24;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(util_test "/root/repo/build/tests/util_test")
set_tests_properties(util_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;24;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(future_test "/root/repo/build/tests/future_test")
set_tests_properties(future_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;24;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(sim_test "/root/repo/build/tests/sim_test")
set_tests_properties(sim_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;24;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(loadgen_test "/root/repo/build/tests/loadgen_test")
set_tests_properties(loadgen_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;24;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(runtime_edge_test "/root/repo/build/tests/runtime_edge_test")
set_tests_properties(runtime_edge_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;24;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(shm_property_test "/root/repo/build/tests/shm_property_test")
set_tests_properties(shm_property_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;24;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(cattle_edge_test "/root/repo/build/tests/cattle_edge_test")
set_tests_properties(cattle_edge_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;24;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(real_mode_stress_test "/root/repo/build/tests/real_mode_stress_test")
set_tests_properties(real_mode_stress_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;24;add_test;/root/repo/tests/CMakeLists.txt;0;")
