file(REMOVE_RECURSE
  "CMakeFiles/cattle_edge_test.dir/cattle_edge_test.cc.o"
  "CMakeFiles/cattle_edge_test.dir/cattle_edge_test.cc.o.d"
  "cattle_edge_test"
  "cattle_edge_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cattle_edge_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
