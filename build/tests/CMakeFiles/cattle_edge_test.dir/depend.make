# Empty dependencies file for cattle_edge_test.
# This may be replaced when dependencies are built.
