# Empty dependencies file for real_mode_stress_test.
# This may be replaced when dependencies are built.
