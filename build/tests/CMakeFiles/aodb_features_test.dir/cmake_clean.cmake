file(REMOVE_RECURSE
  "CMakeFiles/aodb_features_test.dir/aodb_features_test.cc.o"
  "CMakeFiles/aodb_features_test.dir/aodb_features_test.cc.o.d"
  "aodb_features_test"
  "aodb_features_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aodb_features_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
