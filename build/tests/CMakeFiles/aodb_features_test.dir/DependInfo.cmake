
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/aodb_features_test.cc" "tests/CMakeFiles/aodb_features_test.dir/aodb_features_test.cc.o" "gcc" "tests/CMakeFiles/aodb_features_test.dir/aodb_features_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/loadgen/CMakeFiles/aodb_loadgen.dir/DependInfo.cmake"
  "/root/repo/build/src/shm/CMakeFiles/aodb_shm.dir/DependInfo.cmake"
  "/root/repo/build/src/cattle/CMakeFiles/aodb_cattle.dir/DependInfo.cmake"
  "/root/repo/build/src/aodb/CMakeFiles/aodb_db.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/aodb_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/actor/CMakeFiles/aodb_actor.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/aodb_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
