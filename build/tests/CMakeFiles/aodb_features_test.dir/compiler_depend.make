# Empty compiler generated dependencies file for aodb_features_test.
# This may be replaced when dependencies are built.
