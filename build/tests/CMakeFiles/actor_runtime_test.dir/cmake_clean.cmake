file(REMOVE_RECURSE
  "CMakeFiles/actor_runtime_test.dir/actor_runtime_test.cc.o"
  "CMakeFiles/actor_runtime_test.dir/actor_runtime_test.cc.o.d"
  "actor_runtime_test"
  "actor_runtime_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/actor_runtime_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
