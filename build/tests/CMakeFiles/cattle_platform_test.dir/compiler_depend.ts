# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for cattle_platform_test.
