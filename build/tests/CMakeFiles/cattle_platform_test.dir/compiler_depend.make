# Empty compiler generated dependencies file for cattle_platform_test.
# This may be replaced when dependencies are built.
