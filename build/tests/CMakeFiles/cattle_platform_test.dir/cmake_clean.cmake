file(REMOVE_RECURSE
  "CMakeFiles/cattle_platform_test.dir/cattle_platform_test.cc.o"
  "CMakeFiles/cattle_platform_test.dir/cattle_platform_test.cc.o.d"
  "cattle_platform_test"
  "cattle_platform_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cattle_platform_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
