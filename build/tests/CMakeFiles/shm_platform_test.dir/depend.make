# Empty dependencies file for shm_platform_test.
# This may be replaced when dependencies are built.
