file(REMOVE_RECURSE
  "CMakeFiles/shm_platform_test.dir/shm_platform_test.cc.o"
  "CMakeFiles/shm_platform_test.dir/shm_platform_test.cc.o.d"
  "shm_platform_test"
  "shm_platform_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/shm_platform_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
