file(REMOVE_RECURSE
  "CMakeFiles/aodb_actor.dir/actor.cc.o"
  "CMakeFiles/aodb_actor.dir/actor.cc.o.d"
  "CMakeFiles/aodb_actor.dir/cluster.cc.o"
  "CMakeFiles/aodb_actor.dir/cluster.cc.o.d"
  "CMakeFiles/aodb_actor.dir/directory.cc.o"
  "CMakeFiles/aodb_actor.dir/directory.cc.o.d"
  "CMakeFiles/aodb_actor.dir/silo.cc.o"
  "CMakeFiles/aodb_actor.dir/silo.cc.o.d"
  "CMakeFiles/aodb_actor.dir/thread_pool.cc.o"
  "CMakeFiles/aodb_actor.dir/thread_pool.cc.o.d"
  "libaodb_actor.a"
  "libaodb_actor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aodb_actor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
