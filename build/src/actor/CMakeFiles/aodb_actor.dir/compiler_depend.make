# Empty compiler generated dependencies file for aodb_actor.
# This may be replaced when dependencies are built.
