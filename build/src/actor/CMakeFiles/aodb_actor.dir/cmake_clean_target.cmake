file(REMOVE_RECURSE
  "libaodb_actor.a"
)
