
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/actor/actor.cc" "src/actor/CMakeFiles/aodb_actor.dir/actor.cc.o" "gcc" "src/actor/CMakeFiles/aodb_actor.dir/actor.cc.o.d"
  "/root/repo/src/actor/cluster.cc" "src/actor/CMakeFiles/aodb_actor.dir/cluster.cc.o" "gcc" "src/actor/CMakeFiles/aodb_actor.dir/cluster.cc.o.d"
  "/root/repo/src/actor/directory.cc" "src/actor/CMakeFiles/aodb_actor.dir/directory.cc.o" "gcc" "src/actor/CMakeFiles/aodb_actor.dir/directory.cc.o.d"
  "/root/repo/src/actor/silo.cc" "src/actor/CMakeFiles/aodb_actor.dir/silo.cc.o" "gcc" "src/actor/CMakeFiles/aodb_actor.dir/silo.cc.o.d"
  "/root/repo/src/actor/thread_pool.cc" "src/actor/CMakeFiles/aodb_actor.dir/thread_pool.cc.o" "gcc" "src/actor/CMakeFiles/aodb_actor.dir/thread_pool.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/aodb_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
