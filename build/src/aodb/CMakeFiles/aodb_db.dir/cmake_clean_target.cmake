file(REMOVE_RECURSE
  "libaodb_db.a"
)
