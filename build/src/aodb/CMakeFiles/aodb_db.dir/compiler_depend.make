# Empty compiler generated dependencies file for aodb_db.
# This may be replaced when dependencies are built.
