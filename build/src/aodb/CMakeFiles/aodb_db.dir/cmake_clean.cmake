file(REMOVE_RECURSE
  "CMakeFiles/aodb_db.dir/txn.cc.o"
  "CMakeFiles/aodb_db.dir/txn.cc.o.d"
  "CMakeFiles/aodb_db.dir/workflow.cc.o"
  "CMakeFiles/aodb_db.dir/workflow.cc.o.d"
  "libaodb_db.a"
  "libaodb_db.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aodb_db.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
