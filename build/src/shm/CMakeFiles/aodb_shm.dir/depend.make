# Empty dependencies file for aodb_shm.
# This may be replaced when dependencies are built.
