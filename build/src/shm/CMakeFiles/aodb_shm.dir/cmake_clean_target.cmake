file(REMOVE_RECURSE
  "libaodb_shm.a"
)
