
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/shm/aggregator_actor.cc" "src/shm/CMakeFiles/aodb_shm.dir/aggregator_actor.cc.o" "gcc" "src/shm/CMakeFiles/aodb_shm.dir/aggregator_actor.cc.o.d"
  "/root/repo/src/shm/channel_actor.cc" "src/shm/CMakeFiles/aodb_shm.dir/channel_actor.cc.o" "gcc" "src/shm/CMakeFiles/aodb_shm.dir/channel_actor.cc.o.d"
  "/root/repo/src/shm/organization_actor.cc" "src/shm/CMakeFiles/aodb_shm.dir/organization_actor.cc.o" "gcc" "src/shm/CMakeFiles/aodb_shm.dir/organization_actor.cc.o.d"
  "/root/repo/src/shm/platform.cc" "src/shm/CMakeFiles/aodb_shm.dir/platform.cc.o" "gcc" "src/shm/CMakeFiles/aodb_shm.dir/platform.cc.o.d"
  "/root/repo/src/shm/sensor_actor.cc" "src/shm/CMakeFiles/aodb_shm.dir/sensor_actor.cc.o" "gcc" "src/shm/CMakeFiles/aodb_shm.dir/sensor_actor.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/storage/CMakeFiles/aodb_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/actor/CMakeFiles/aodb_actor.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/aodb_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
