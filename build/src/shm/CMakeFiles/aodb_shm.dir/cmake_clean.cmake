file(REMOVE_RECURSE
  "CMakeFiles/aodb_shm.dir/aggregator_actor.cc.o"
  "CMakeFiles/aodb_shm.dir/aggregator_actor.cc.o.d"
  "CMakeFiles/aodb_shm.dir/channel_actor.cc.o"
  "CMakeFiles/aodb_shm.dir/channel_actor.cc.o.d"
  "CMakeFiles/aodb_shm.dir/organization_actor.cc.o"
  "CMakeFiles/aodb_shm.dir/organization_actor.cc.o.d"
  "CMakeFiles/aodb_shm.dir/platform.cc.o"
  "CMakeFiles/aodb_shm.dir/platform.cc.o.d"
  "CMakeFiles/aodb_shm.dir/sensor_actor.cc.o"
  "CMakeFiles/aodb_shm.dir/sensor_actor.cc.o.d"
  "libaodb_shm.a"
  "libaodb_shm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aodb_shm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
