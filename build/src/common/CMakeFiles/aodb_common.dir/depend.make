# Empty dependencies file for aodb_common.
# This may be replaced when dependencies are built.
