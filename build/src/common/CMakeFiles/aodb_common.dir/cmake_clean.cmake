file(REMOVE_RECURSE
  "CMakeFiles/aodb_common.dir/clock.cc.o"
  "CMakeFiles/aodb_common.dir/clock.cc.o.d"
  "CMakeFiles/aodb_common.dir/codec.cc.o"
  "CMakeFiles/aodb_common.dir/codec.cc.o.d"
  "CMakeFiles/aodb_common.dir/histogram.cc.o"
  "CMakeFiles/aodb_common.dir/histogram.cc.o.d"
  "CMakeFiles/aodb_common.dir/logging.cc.o"
  "CMakeFiles/aodb_common.dir/logging.cc.o.d"
  "CMakeFiles/aodb_common.dir/stats.cc.o"
  "CMakeFiles/aodb_common.dir/stats.cc.o.d"
  "CMakeFiles/aodb_common.dir/status.cc.o"
  "CMakeFiles/aodb_common.dir/status.cc.o.d"
  "CMakeFiles/aodb_common.dir/table_printer.cc.o"
  "CMakeFiles/aodb_common.dir/table_printer.cc.o.d"
  "libaodb_common.a"
  "libaodb_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aodb_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
