file(REMOVE_RECURSE
  "libaodb_common.a"
)
