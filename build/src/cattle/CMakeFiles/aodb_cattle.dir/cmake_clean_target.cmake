file(REMOVE_RECURSE
  "libaodb_cattle.a"
)
