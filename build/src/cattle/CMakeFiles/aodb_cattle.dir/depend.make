# Empty dependencies file for aodb_cattle.
# This may be replaced when dependencies are built.
