file(REMOVE_RECURSE
  "CMakeFiles/aodb_cattle.dir/cow_actor.cc.o"
  "CMakeFiles/aodb_cattle.dir/cow_actor.cc.o.d"
  "CMakeFiles/aodb_cattle.dir/distributor_actor.cc.o"
  "CMakeFiles/aodb_cattle.dir/distributor_actor.cc.o.d"
  "CMakeFiles/aodb_cattle.dir/farmer_actor.cc.o"
  "CMakeFiles/aodb_cattle.dir/farmer_actor.cc.o.d"
  "CMakeFiles/aodb_cattle.dir/meat_cut_actor.cc.o"
  "CMakeFiles/aodb_cattle.dir/meat_cut_actor.cc.o.d"
  "CMakeFiles/aodb_cattle.dir/platform.cc.o"
  "CMakeFiles/aodb_cattle.dir/platform.cc.o.d"
  "CMakeFiles/aodb_cattle.dir/retailer_actor.cc.o"
  "CMakeFiles/aodb_cattle.dir/retailer_actor.cc.o.d"
  "CMakeFiles/aodb_cattle.dir/slaughterhouse_actor.cc.o"
  "CMakeFiles/aodb_cattle.dir/slaughterhouse_actor.cc.o.d"
  "libaodb_cattle.a"
  "libaodb_cattle.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aodb_cattle.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
