
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cattle/cow_actor.cc" "src/cattle/CMakeFiles/aodb_cattle.dir/cow_actor.cc.o" "gcc" "src/cattle/CMakeFiles/aodb_cattle.dir/cow_actor.cc.o.d"
  "/root/repo/src/cattle/distributor_actor.cc" "src/cattle/CMakeFiles/aodb_cattle.dir/distributor_actor.cc.o" "gcc" "src/cattle/CMakeFiles/aodb_cattle.dir/distributor_actor.cc.o.d"
  "/root/repo/src/cattle/farmer_actor.cc" "src/cattle/CMakeFiles/aodb_cattle.dir/farmer_actor.cc.o" "gcc" "src/cattle/CMakeFiles/aodb_cattle.dir/farmer_actor.cc.o.d"
  "/root/repo/src/cattle/meat_cut_actor.cc" "src/cattle/CMakeFiles/aodb_cattle.dir/meat_cut_actor.cc.o" "gcc" "src/cattle/CMakeFiles/aodb_cattle.dir/meat_cut_actor.cc.o.d"
  "/root/repo/src/cattle/platform.cc" "src/cattle/CMakeFiles/aodb_cattle.dir/platform.cc.o" "gcc" "src/cattle/CMakeFiles/aodb_cattle.dir/platform.cc.o.d"
  "/root/repo/src/cattle/retailer_actor.cc" "src/cattle/CMakeFiles/aodb_cattle.dir/retailer_actor.cc.o" "gcc" "src/cattle/CMakeFiles/aodb_cattle.dir/retailer_actor.cc.o.d"
  "/root/repo/src/cattle/slaughterhouse_actor.cc" "src/cattle/CMakeFiles/aodb_cattle.dir/slaughterhouse_actor.cc.o" "gcc" "src/cattle/CMakeFiles/aodb_cattle.dir/slaughterhouse_actor.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/aodb/CMakeFiles/aodb_db.dir/DependInfo.cmake"
  "/root/repo/build/src/actor/CMakeFiles/aodb_actor.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/aodb_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
