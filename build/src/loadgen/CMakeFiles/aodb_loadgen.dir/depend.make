# Empty dependencies file for aodb_loadgen.
# This may be replaced when dependencies are built.
