file(REMOVE_RECURSE
  "libaodb_loadgen.a"
)
