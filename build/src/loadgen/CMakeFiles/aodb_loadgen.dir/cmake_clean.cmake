file(REMOVE_RECURSE
  "CMakeFiles/aodb_loadgen.dir/shm_loadgen.cc.o"
  "CMakeFiles/aodb_loadgen.dir/shm_loadgen.cc.o.d"
  "libaodb_loadgen.a"
  "libaodb_loadgen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aodb_loadgen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
