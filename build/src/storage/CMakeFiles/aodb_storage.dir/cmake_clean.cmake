file(REMOVE_RECURSE
  "CMakeFiles/aodb_storage.dir/cloud_kv.cc.o"
  "CMakeFiles/aodb_storage.dir/cloud_kv.cc.o.d"
  "CMakeFiles/aodb_storage.dir/file_kv.cc.o"
  "CMakeFiles/aodb_storage.dir/file_kv.cc.o.d"
  "CMakeFiles/aodb_storage.dir/mem_kv.cc.o"
  "CMakeFiles/aodb_storage.dir/mem_kv.cc.o.d"
  "libaodb_storage.a"
  "libaodb_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aodb_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
