# Empty compiler generated dependencies file for aodb_storage.
# This may be replaced when dependencies are built.
