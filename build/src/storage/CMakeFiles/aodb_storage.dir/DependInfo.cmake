
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/storage/cloud_kv.cc" "src/storage/CMakeFiles/aodb_storage.dir/cloud_kv.cc.o" "gcc" "src/storage/CMakeFiles/aodb_storage.dir/cloud_kv.cc.o.d"
  "/root/repo/src/storage/file_kv.cc" "src/storage/CMakeFiles/aodb_storage.dir/file_kv.cc.o" "gcc" "src/storage/CMakeFiles/aodb_storage.dir/file_kv.cc.o.d"
  "/root/repo/src/storage/mem_kv.cc" "src/storage/CMakeFiles/aodb_storage.dir/mem_kv.cc.o" "gcc" "src/storage/CMakeFiles/aodb_storage.dir/mem_kv.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/actor/CMakeFiles/aodb_actor.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/aodb_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
