file(REMOVE_RECURSE
  "libaodb_storage.a"
)
