file(REMOVE_RECURSE
  "CMakeFiles/aodb_features.dir/aodb_features.cpp.o"
  "CMakeFiles/aodb_features.dir/aodb_features.cpp.o.d"
  "aodb_features"
  "aodb_features.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aodb_features.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
