# Empty dependencies file for aodb_features.
# This may be replaced when dependencies are built.
