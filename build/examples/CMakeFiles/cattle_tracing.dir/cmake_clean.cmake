file(REMOVE_RECURSE
  "CMakeFiles/cattle_tracing.dir/cattle_tracing.cpp.o"
  "CMakeFiles/cattle_tracing.dir/cattle_tracing.cpp.o.d"
  "cattle_tracing"
  "cattle_tracing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cattle_tracing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
