# Empty compiler generated dependencies file for cattle_tracing.
# This may be replaced when dependencies are built.
