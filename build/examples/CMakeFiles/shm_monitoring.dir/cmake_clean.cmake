file(REMOVE_RECURSE
  "CMakeFiles/shm_monitoring.dir/shm_monitoring.cpp.o"
  "CMakeFiles/shm_monitoring.dir/shm_monitoring.cpp.o.d"
  "shm_monitoring"
  "shm_monitoring.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/shm_monitoring.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
