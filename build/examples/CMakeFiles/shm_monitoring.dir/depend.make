# Empty dependencies file for shm_monitoring.
# This may be replaced when dependencies are built.
