# Empty compiler generated dependencies file for ext_cattle_ingestion.
# This may be replaced when dependencies are built.
