file(REMOVE_RECURSE
  "CMakeFiles/ext_cattle_ingestion.dir/ext_cattle_ingestion.cc.o"
  "CMakeFiles/ext_cattle_ingestion.dir/ext_cattle_ingestion.cc.o.d"
  "ext_cattle_ingestion"
  "ext_cattle_ingestion.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_cattle_ingestion.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
