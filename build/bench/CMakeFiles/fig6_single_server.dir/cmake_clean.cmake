file(REMOVE_RECURSE
  "CMakeFiles/fig6_single_server.dir/fig6_single_server.cc.o"
  "CMakeFiles/fig6_single_server.dir/fig6_single_server.cc.o.d"
  "fig6_single_server"
  "fig6_single_server.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_single_server.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
