# Empty compiler generated dependencies file for fig6_single_server.
# This may be replaced when dependencies are built.
