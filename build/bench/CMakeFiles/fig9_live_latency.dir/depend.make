# Empty dependencies file for fig9_live_latency.
# This may be replaced when dependencies are built.
