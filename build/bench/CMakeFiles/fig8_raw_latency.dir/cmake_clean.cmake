file(REMOVE_RECURSE
  "CMakeFiles/fig8_raw_latency.dir/fig8_raw_latency.cc.o"
  "CMakeFiles/fig8_raw_latency.dir/fig8_raw_latency.cc.o.d"
  "fig8_raw_latency"
  "fig8_raw_latency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_raw_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
