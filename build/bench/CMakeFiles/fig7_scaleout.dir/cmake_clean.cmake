file(REMOVE_RECURSE
  "CMakeFiles/fig7_scaleout.dir/fig7_scaleout.cc.o"
  "CMakeFiles/fig7_scaleout.dir/fig7_scaleout.cc.o.d"
  "fig7_scaleout"
  "fig7_scaleout.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_scaleout.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
